package oracle

// Noise is the DBSCAN label for points that belong to no cluster. It
// mirrors dbscan.Noise without importing the package under test.
const Noise = -1

// DBSCAN is a brute-force reference implementation of DBSCAN (Ester et
// al., KDD 1996) formulated structurally rather than by seed-queue
// expansion, so it shares no code shape with the production BFS in
// internal/dbscan:
//
//  1. Every ε-neighborhood is materialized by a full O(n²) scan.
//  2. Core points (|N_ε(p)| ≥ minPts, self included) are connected into
//     clusters by union-find over the "within ε of each other" relation.
//  3. Components are numbered by their smallest core point's index —
//     exactly the order in which an index-seeded expansion would have
//     discovered them.
//  4. Each border point (non-core with at least one core within ε)
//     joins the lowest-numbered cluster among its core neighbors, which
//     is the cluster whose expansion would have reached it first.
//
// The result is label-identical to deterministic index-order seeded
// DBSCAN, with Noise for all remaining points.
func DBSCAN(n int, dist DistFunc, eps float64, minPts int) []int {
	neighborhoods := make([][]int, n)
	core := make([]bool, n)
	for p := 0; p < n; p++ {
		for q := 0; q < n; q++ {
			if dist(p, q) <= eps {
				neighborhoods[p] = append(neighborhoods[p], q)
			}
		}
		core[p] = len(neighborhoods[p]) >= minPts
	}

	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for p := 0; p < n; p++ {
		if !core[p] {
			continue
		}
		for _, q := range neighborhoods[p] {
			if core[q] {
				parent[find(p)] = find(q)
			}
		}
	}

	// Number components by their minimal core index.
	clusterOf := make(map[int]int)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = Noise
	}
	next := 0
	for p := 0; p < n; p++ {
		if !core[p] {
			continue
		}
		root := find(p)
		id, ok := clusterOf[root]
		if !ok {
			id = next
			next++
			clusterOf[root] = id
		}
		labels[p] = id
	}

	// Border points take the lowest cluster id among core neighbors.
	for p := 0; p < n; p++ {
		if core[p] {
			continue
		}
		best := Noise
		for _, q := range neighborhoods[p] {
			if !core[q] {
				continue
			}
			if id := clusterOf[find(q)]; best == Noise || id < best {
				best = id
			}
		}
		labels[p] = best
	}
	return labels
}
