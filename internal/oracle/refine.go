package oracle

import "math"

// PairwiseMean returns the arithmetic mean of all pairwise
// dissimilarities within cluster c, by direct double loop. NaN for
// clusters with fewer than two members.
func PairwiseMean(c []int, dist DistFunc) float64 {
	var sum float64
	var count int
	for a := 0; a < len(c); a++ {
		for b := 0; b < len(c); b++ {
			if a == b {
				continue
			}
			sum += dist(c[a], c[b])
			count++
		}
	}
	if count == 0 {
		return math.NaN()
	}
	// Every unordered pair was visited twice; the mean is unaffected.
	return sum / float64(count)
}

// PairwiseMax returns the maximum pairwise dissimilarity within c (the
// cluster extent), or -Inf for clusters with fewer than two members.
func PairwiseMax(c []int, dist DistFunc) float64 {
	max := math.Inf(-1)
	for a := 0; a < len(c); a++ {
		for b := a + 1; b < len(c); b++ {
			if d := dist(c[a], c[b]); d > max {
				max = d
			}
		}
	}
	return max
}

// NearestNeighborMedian returns the median over cluster members of each
// member's distance to its nearest other member — the minmed statistic
// of the Section III-F merge conditions. NaN for fewer than two members.
func NearestNeighborMedian(c []int, dist DistFunc) float64 {
	mins := make([]float64, 0, len(c))
	for _, a := range c {
		best := math.Inf(1)
		for _, b := range c {
			if a != b && dist(a, b) < best {
				best = dist(a, b)
			}
		}
		mins = append(mins, best)
	}
	return Median(mins)
}

// Median returns the median of xs by full selection sort semantics
// (via kthSmallest), averaging the two central order statistics for
// even lengths. NaN for empty input.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	if n%2 == 1 {
		return kthSmallest(xs, n/2)
	}
	return (kthSmallest(xs, n/2-1) + kthSmallest(xs, n/2)) / 2
}

// LinkSegments returns the closest pair (a ∈ ci, b ∈ cj) and its
// distance d_link, scanning all |ci|·|cj| pairs. Ties resolve to the
// first pair in iteration order, matching the production scan.
func LinkSegments(ci, cj []int, dist DistFunc) (a, b int, dLink float64) {
	dLink = math.Inf(1)
	for _, x := range ci {
		for _, y := range cj {
			if d := dist(x, y); d < dLink {
				dLink = d
				a, b = x, y
			}
		}
	}
	return a, b, dLink
}

// RhoEps returns the ε-density around a link segment: the median
// distance from link to the cluster members within ε (link itself
// excluded) and the neighborhood size; (0, 0) when the neighborhood is
// empty.
func RhoEps(link int, cluster []int, eps float64, dist DistFunc) (float64, int) {
	var within []float64
	for _, s := range cluster {
		if s == link {
			continue
		}
		if d := dist(link, s); d <= eps {
			within = append(within, d)
		}
	}
	if len(within) == 0 {
		return 0, 0
	}
	return Median(within), len(within)
}
