// Package oracle provides small, obviously-correct reference
// implementations of the numeric algorithms at the heart of the
// clustering pipeline: textbook DBSCAN, naive ECDF evaluation,
// percentile and percent-rank statistics, Kneedle's discrete difference
// curve, and O(n²) cluster-refinement statistics.
//
// Nothing in this package is optimized; every function favors the most
// direct transcription of its definition. The production packages
// (internal/dbscan, internal/ecdf, internal/vecmath, internal/kneedle,
// internal/core) are checked against these references by differential
// and metamorphic tests under randomized inputs, so the fast paths can
// keep evolving without silently drifting from the paper's semantics.
//
// The package deliberately imports none of the production packages it
// verifies — an oracle that shares code with the subject under test
// can only confirm the shared bugs.
package oracle

import "sort"

// DistFunc returns the dissimilarity between points i and j. It must be
// symmetric with DistFunc(i, i) == 0.
type DistFunc func(i, j int) float64

// CanonicalPartition sorts every cluster's members and then the
// clusters by their smallest member, so two partitions can be compared
// for set-of-sets equality regardless of discovery order. The input is
// not modified.
func CanonicalPartition(clusters [][]int) [][]int {
	out := make([][]int, 0, len(clusters))
	for _, c := range clusters {
		cp := append([]int(nil), c...)
		sort.Ints(cp)
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) == 0 || len(out[j]) == 0 {
			return len(out[i]) < len(out[j])
		}
		return out[i][0] < out[j][0]
	})
	return out
}

// EqualPartitions reports whether two partitions contain exactly the
// same clusters (as sets), ignoring cluster order and member order.
func EqualPartitions(a, b [][]int) bool {
	ca, cb := CanonicalPartition(a), CanonicalPartition(b)
	if len(ca) != len(cb) {
		return false
	}
	for i := range ca {
		if len(ca[i]) != len(cb[i]) {
			return false
		}
		for j := range ca[i] {
			if ca[i][j] != cb[i][j] {
				return false
			}
		}
	}
	return true
}
