package oracle

import "math"

// ECDFEval returns Ê(x) = |{s ∈ samples : s ≤ x}| / n by direct
// counting, with no sorting or binary search. NaN for empty input.
func ECDFEval(samples []float64, x float64) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	count := 0
	for _, s := range samples {
		if s <= x {
			count++
		}
	}
	return float64(count) / float64(len(samples))
}

// ECDFQuantile returns the smallest sample value v with Ê(v) ≥ q by
// scanning every sample as a candidate — O(n²) and definitionally
// correct. q ≤ 0 yields the minimum sample, q ≥ 1 the maximum.
func ECDFQuantile(samples []float64, q float64) float64 {
	if q > 1 {
		q = 1
	}
	best := math.Inf(1)
	for _, v := range samples {
		if v < best && (q <= 0 || ECDFEval(samples, v) >= q) {
			best = v
		}
	}
	return best
}

// Percentile computes the p-th percentile of xs under the
// C = 1 ("linear", R type 7) convention: the value at fractional rank
// r = p/100·(n−1) of the ascending order statistics, linearly
// interpolated between the two enclosing ranks. p is clamped to
// [0, 100]; NaN p or empty xs yield NaN.
//
// The rank walk below selects each order statistic by repeated
// minimum extraction instead of sorting, so the reference shares no
// code path with vecmath.Percentile.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 || math.IsNaN(p) {
		return math.NaN()
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	rank := p / 100 * float64(len(xs)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	vLo := kthSmallest(xs, lo)
	if frac == 0 {
		return vLo
	}
	vHi := kthSmallest(xs, lo+1)
	return vLo + frac*(vHi-vLo)
}

// kthSmallest returns the k-th (0-based) ascending order statistic by
// selection: scan for the minimum k+1 times, excluding found indices.
func kthSmallest(xs []float64, k int) float64 {
	used := make([]bool, len(xs))
	var val float64
	for round := 0; round <= k; round++ {
		idx := -1
		for i, x := range xs {
			if used[i] {
				continue
			}
			if idx < 0 || x < xs[idx] {
				idx = i
			}
		}
		used[idx] = true
		val = xs[idx]
	}
	return val
}

// PercentRank returns the mean-rank ("Roscoe") percent rank of v in xs:
// the percentage of observations strictly below v plus half of those
// equal to v. NaN for empty xs or NaN v.
func PercentRank(xs []float64, v float64) float64 {
	if len(xs) == 0 || math.IsNaN(v) {
		return math.NaN()
	}
	var score float64
	for _, x := range xs {
		switch {
		case x < v:
			score += 1
		case x == v:
			score += 0.5
		}
	}
	return score / float64(len(xs)) * 100
}
