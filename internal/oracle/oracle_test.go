package oracle

import (
	"math"
	"testing"
)

// lineDist places points on a line; distances are absolute differences.
func lineDist(pos []float64) DistFunc {
	return func(i, j int) float64 { return math.Abs(pos[i] - pos[j]) }
}

func TestDBSCANHandWorked(t *testing.T) {
	// Two clumps and an outlier: {0, 0.1, 0.2} and {1.0, 1.1, 1.2}, plus
	// 5.0. eps = 0.15, minPts = 2 → two clusters, one noise point.
	pos := []float64{0, 0.1, 0.2, 1.0, 1.1, 1.2, 5.0}
	labels := DBSCAN(len(pos), lineDist(pos), 0.15, 2)
	want := []int{0, 0, 0, 1, 1, 1, Noise}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("labels = %v, want %v", labels, want)
		}
	}
}

func TestDBSCANBorderJoinsLowestCluster(t *testing.T) {
	// A border point (not core at minPts=3) equidistant from cores of two
	// clusters must take the lower cluster id, matching index-seeded
	// expansion order.
	//
	// Positions: cluster A {0, 0.05, 0.1}, border 0.5, cluster B
	// {0.9, 0.95, 1.0}; eps = 0.4. The border reaches cores 0.1 and 0.9
	// but has only 3 points within eps (itself, 0.1, 0.9) — with
	// minPts = 4 it is not core.
	pos := []float64{0, 0.05, 0.1, 0.5, 0.9, 0.95, 1.0}
	labels := DBSCAN(len(pos), lineDist(pos), 0.4, 4)
	if labels[3] != 0 {
		t.Errorf("border label = %d, want 0 (first-expanding cluster)", labels[3])
	}
	if labels[0] != 0 || labels[6] != 1 {
		t.Errorf("cluster numbering off: %v", labels)
	}
}

func TestECDFEvalAndQuantile(t *testing.T) {
	samples := []float64{3, 1, 2, 2}
	if got := ECDFEval(samples, 2); got != 0.75 {
		t.Errorf("Ê(2) = %v, want 0.75", got)
	}
	if got := ECDFEval(samples, 0.5); got != 0 {
		t.Errorf("Ê(0.5) = %v, want 0", got)
	}
	if got := ECDFQuantile(samples, 0.5); got != 2 {
		t.Errorf("quantile(0.5) = %v, want 2", got)
	}
	if got := ECDFQuantile(samples, 1); got != 3 {
		t.Errorf("quantile(1) = %v, want 3", got)
	}
	if !math.IsNaN(ECDFEval(nil, 1)) {
		t.Error("empty ECDF should evaluate to NaN")
	}
}

func TestPercentileHandWorked(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 15}, {100, 50}, {50, 35},
		{25, 20}, {75, 40},
		{40, (35-20)*0.6 + 20}, // rank 1.6 between 20 and 35
		{-5, 15}, {150, 50},    // clamped
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(xs, math.NaN())) {
		t.Error("NaN p should yield NaN")
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty input should yield NaN")
	}
	if got := Percentile([]float64{7}, 63); got != 7 {
		t.Errorf("single-element percentile = %v, want 7", got)
	}
}

func TestPercentRankHandWorked(t *testing.T) {
	xs := []float64{1, 2, 2, 3}
	// v = 2: one below, two equal → (1 + 1) / 4 = 50 %.
	if got := PercentRank(xs, 2); got != 50 {
		t.Errorf("PercentRank(2) = %v, want 50", got)
	}
	if got := PercentRank(xs, 10); got != 100 {
		t.Errorf("PercentRank(10) = %v, want 100", got)
	}
	if got := PercentRank(xs, 0); got != 0 {
		t.Errorf("PercentRank(0) = %v, want 0", got)
	}
	if !math.IsNaN(PercentRank(xs, math.NaN())) {
		t.Error("NaN v should yield NaN")
	}
	if !math.IsNaN(PercentRank(nil, 1)) {
		t.Error("empty xs should yield NaN")
	}
}

func TestDifferenceCurveAndKnee(t *testing.T) {
	// y = sqrt(x) on [0, 1]: concave increasing, difference curve peaks
	// at x = 1/4 where sqrt(x) − x is maximal.
	n := 101
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i) / float64(n-1)
		ys[i] = math.Sqrt(xs[i])
	}
	knee := Knee(xs, ys)
	if knee < 0 {
		t.Fatal("no knee found on sqrt curve")
	}
	if math.Abs(xs[knee]-0.25) > 0.02 {
		t.Errorf("knee at x = %v, want ≈ 0.25", xs[knee])
	}
	diff := DifferenceCurve(xs, ys)
	maxima := LocalMaxima(diff)
	found := false
	for _, m := range maxima {
		if m == knee {
			found = true
		}
	}
	if !found {
		t.Errorf("global knee %d not among local maxima %v", knee, maxima)
	}
	// A straight line has no positive difference → no knee.
	if k := Knee(xs, xs); k != -1 {
		t.Errorf("straight line produced knee %d", k)
	}
}

func TestRefineStatsHandWorked(t *testing.T) {
	pos := []float64{0, 0.1, 0.3}
	d := lineDist(pos)
	c := []int{0, 1, 2}
	if got := PairwiseMean(c, d); math.Abs(got-(0.1+0.3+0.2)/3) > 1e-12 {
		t.Errorf("mean = %v", got)
	}
	if got := PairwiseMax(c, d); got != 0.3 {
		t.Errorf("max = %v", got)
	}
	// Nearest-neighbor distances: 0.1, 0.1, 0.2 → median 0.1.
	if got := NearestNeighborMedian(c, d); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("minmed = %v", got)
	}
	a, b, dl := LinkSegments([]int{0, 1}, []int{2}, d)
	if a != 1 || b != 2 || math.Abs(dl-0.2) > 1e-12 {
		t.Errorf("link = (%d,%d,%v)", a, b, dl)
	}
	rho, n := RhoEps(0, c, 0.15, d)
	if n != 1 || rho != 0.1 {
		t.Errorf("rhoEps = (%v,%d), want (0.1,1)", rho, n)
	}
}

func TestMedianEvenOdd(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even median = %v", got)
	}
	if !math.IsNaN(Median(nil)) {
		t.Error("empty median should be NaN")
	}
}

func TestPartitionHelpers(t *testing.T) {
	a := [][]int{{3, 1}, {2}, {5, 4}}
	b := [][]int{{4, 5}, {1, 3}, {2}}
	if !EqualPartitions(a, b) {
		t.Error("permuted partitions should compare equal")
	}
	c := [][]int{{1, 2}, {3}, {4, 5}}
	if EqualPartitions(a, c) {
		t.Error("different partitions compared equal")
	}
}
