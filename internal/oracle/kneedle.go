package oracle

// DifferenceCurve computes Kneedle's normalized difference curve for a
// concave increasing input: both axes are rescaled to the unit square
// and the difference d_i = y_n[i] − x_n[i] is returned. This is the
// quantity the production detector reports as a knee's Prominence.
// Curves with fewer than two points or a flat y range return nil.
func DifferenceCurve(xs, ys []float64) []float64 {
	n := len(xs)
	if n < 2 || len(ys) != n {
		return nil
	}
	xlo, xhi := xs[0], xs[n-1]
	ylo, yhi := ys[0], ys[0]
	for _, y := range ys {
		if y < ylo {
			ylo = y
		}
		if y > yhi {
			yhi = y
		}
	}
	if !(xhi > xlo) || yhi == ylo {
		return nil
	}
	diff := make([]float64, n)
	for i := range diff {
		diff[i] = (ys[i]-ylo)/(yhi-ylo) - (xs[i]-xlo)/(xhi-xlo)
	}
	return diff
}

// LocalMaxima returns the interior indices i (0 < i < n−1) where the
// difference curve has a local maximum under Kneedle's tie convention:
// diff[i] ≥ diff[i−1] and diff[i] > diff[i+1]. Every knee the
// production detector confirms must sit on one of these indices.
func LocalMaxima(diff []float64) []int {
	var out []int
	for i := 1; i < len(diff)-1; i++ {
		if diff[i] >= diff[i-1] && diff[i] > diff[i+1] {
			out = append(out, i)
		}
	}
	return out
}

// Knee returns the index of the global maximum of the normalized
// difference curve of a concave increasing curve — the single most
// pronounced knee, per the discrete Kneedle definition — or -1 when no
// positive difference exists (no knee at all). Ties resolve to the
// first index.
func Knee(xs, ys []float64) int {
	diff := DifferenceCurve(xs, ys)
	best, bestIdx := 0.0, -1
	for i, d := range diff {
		if d > best {
			best = d
			bestIdx = i
		}
	}
	return bestIdx
}
