// Package vecmath provides small numeric helpers shared by the
// clustering pipeline: means, medians, standard deviation, percentiles,
// percent rank, and argmax/argmin over float64 slices.
//
// All functions treat their inputs as read-only; functions that need to
// sort operate on an internal copy.
package vecmath

import (
	"math"
	"slices"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median returns the median of xs, or NaN for an empty slice. For an
// even number of elements it returns the mean of the two central ones.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	cp := append([]float64(nil), xs...)
	slices.Sort(cp)
	mid := len(cp) / 2
	if len(cp)%2 == 1 {
		return cp[mid]
	}
	return (cp[mid-1] + cp[mid]) / 2
}

// StdDev returns the population standard deviation of xs, or NaN for an
// empty slice.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	mean := Mean(xs)
	var sum float64
	for _, x := range xs {
		d := x - mean
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// Min returns the smallest element of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	min := math.Inf(1)
	for _, x := range xs {
		if x < min {
			min = x
		}
	}
	return min
}

// Max returns the largest element of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	max := math.Inf(-1)
	for _, x := range xs {
		if x > max {
			max = x
		}
	}
	return max
}

// ArgMax returns the index of the largest element of xs, or -1 for an
// empty slice. Ties resolve to the first occurrence.
func ArgMax(xs []float64) int {
	idx := -1
	max := math.Inf(-1)
	for i, x := range xs {
		if x > max {
			max = x
			idx = i
		}
	}
	return idx
}

// ArgMin returns the index of the smallest element of xs, or -1 for an
// empty slice. Ties resolve to the first occurrence.
func ArgMin(xs []float64) int {
	idx := -1
	min := math.Inf(1)
	for i, x := range xs {
		if x < min {
			min = x
			idx = i
		}
	}
	return idx
}

// Percentile returns the p-th percentile of xs under the C = 1
// ("linear", R type 7, NumPy default) convention: the value at
// fractional rank p/100·(n−1) of the ascending order statistics, with
// linear interpolation between the two enclosing ranks. p is clamped
// to [0, 100], so p ≤ 0 yields the minimum and p ≥ 100 the maximum; a
// single-element slice returns that element for every p. An empty
// slice or NaN p returns NaN. Samples containing NaN are unsupported
// (the order statistics are undefined).
//
// The ε-selection fallback (fallbackQuantile in internal/core) depends
// on this convention; it is pinned by differential tests against
// internal/oracle.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 || math.IsNaN(p) {
		return math.NaN()
	}
	cp := append([]float64(nil), xs...)
	slices.Sort(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	rank := p / 100 * float64(len(cp)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return cp[lo]
	}
	frac := rank - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// PercentRank returns the percent rank of value v within xs under the
// mean-rank convention (Roscoe 1975): the percentage of observations
// strictly below v plus half the observations equal to v. The result
// is in [0, 100]: a v below every observation scores 0, above every
// observation 100, and the rank is symmetric in the sense that
// PercentRank(xs, v) + "percent above" + equal/2 always sums to 100.
// An empty xs or NaN v returns NaN (previously a NaN v silently
// scored 0, which would disable the cluster-split test instead of
// flagging the bad input).
func PercentRank(xs []float64, v float64) float64 {
	if len(xs) == 0 || math.IsNaN(v) {
		return math.NaN()
	}
	var below, equal int
	for _, x := range xs {
		switch {
		case x < v:
			below++
		case EqualExact(x, v):
			equal++
		}
	}
	return (float64(below) + float64(equal)/2) / float64(len(xs)) * 100
}

// Diff returns the successive differences xs[i+1]-xs[i]. The result has
// length len(xs)-1, or is nil when xs has fewer than two elements.
func Diff(xs []float64) []float64 {
	if len(xs) < 2 {
		return nil
	}
	out := make([]float64, len(xs)-1)
	for i := 1; i < len(xs); i++ {
		out[i-1] = xs[i] - xs[i-1]
	}
	return out
}

// Linspace returns n evenly spaced values from lo to hi inclusive.
// n must be at least 2.
func Linspace(lo, hi float64, n int) []float64 {
	if n < 2 {
		return []float64{lo}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi
	return out
}

// Clamp limits x to the interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
