package vecmath

import (
	"math"
	"testing"
)

func TestEqualExact(t *testing.T) {
	if !EqualExact(1.5, 1.5) {
		t.Error("EqualExact(1.5, 1.5) = false")
	}
	if EqualExact(1.5, 1.5000001) {
		t.Error("EqualExact(1.5, 1.5000001) = true")
	}
	if EqualExact(math.NaN(), math.NaN()) {
		t.Error("EqualExact(NaN, NaN) = true; IEEE equality must reject NaN")
	}
	if !EqualExact(0, math.Copysign(0, -1)) {
		t.Error("EqualExact(+0, -0) = false; signed zeros compare equal")
	}
}

func TestIsZero(t *testing.T) {
	if !IsZero(0) || !IsZero(math.Copysign(0, -1)) {
		t.Error("IsZero must accept both signed zeros")
	}
	if IsZero(math.SmallestNonzeroFloat64) || IsZero(-math.SmallestNonzeroFloat64) {
		t.Error("IsZero accepted a denormal; it must be exact")
	}
	if IsZero(math.NaN()) {
		t.Error("IsZero(NaN) = true")
	}
}

func TestEqualWithin(t *testing.T) {
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1.0, 1.0, 0, true},
		{1.0, 1.0 + 1e-10, 1e-9, true},
		{1.0, 1.0 + 1e-8, 1e-9, false},
		{math.NaN(), math.NaN(), math.Inf(1), false},
		{math.NaN(), 1.0, 1, false},
		{1.0, math.NaN(), 1, false},
		{math.Inf(1), math.Inf(1), 0, true},
		{math.Inf(1), math.Inf(-1), math.Inf(1), false},
		{math.Inf(1), 1e308, 1e308, false},
		{-2.0, -2.5, 0.5, true},
	}
	for _, c := range cases {
		if got := EqualWithin(c.a, c.b, c.tol); got != c.want {
			t.Errorf("EqualWithin(%v, %v, %v) = %v, want %v", c.a, c.b, c.tol, got, c.want)
		}
	}
}
