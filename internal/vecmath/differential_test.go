package vecmath

import (
	"math"
	"math/rand"
	"testing"

	"protoclust/internal/oracle"
)

// TestPercentileMatchesOracle compares the sort-based Percentile with
// the oracle's selection-based implementation on randomized inputs,
// including p outside [0, 100] (clamped) and heavy ties.
func TestPercentileMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(rng.Intn(10)) / 3
		}
		ps := []float64{-50, 0, 25, 50, 60, 75, 100, 150}
		for i := 0; i < 10; i++ {
			ps = append(ps, rng.Float64()*140-20)
		}
		for _, p := range ps {
			got := Percentile(xs, p)
			want := oracle.Percentile(xs, p)
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("trial %d: Percentile(%v, %v) = %v, oracle %v", trial, xs, p, got, want)
			}
		}
	}
}

// TestPercentileEdgeCases pins the documented conventions: NaN for the
// empty slice and NaN p, clamping outside [0, 100], single element,
// and the C = 1 interpolation against a worked example (NIST-style
// textbook data, cross-checked with numpy.percentile defaults).
func TestPercentileEdgeCases(t *testing.T) {
	if got := Percentile(nil, 50); !math.IsNaN(got) {
		t.Errorf("Percentile(nil) = %v, want NaN", got)
	}
	if got := Percentile([]float64{1, 2}, math.NaN()); !math.IsNaN(got) {
		t.Errorf("Percentile(p=NaN) = %v, want NaN", got)
	}
	if got := Percentile([]float64{7}, 99); got != 7 {
		t.Errorf("single-element Percentile = %v, want 7", got)
	}
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct{ p, want float64 }{
		{-10, 15}, {0, 15}, {25, 20}, {40, 29}, {50, 35}, {75, 40}, {100, 50}, {130, 50},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v, %v) = %v, want %v", xs, c.p, got, c.want)
		}
	}
}

// TestPercentRankMatchesOracle compares PercentRank with the oracle's
// count-based mean-rank implementation, probing sample values (ties),
// midpoints, and out-of-range values.
func TestPercentRankMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(rng.Intn(8))
		}
		vs := append([]float64{-1, 0, 3.5, 10}, xs[:min(3, n)]...)
		for _, v := range vs {
			got := PercentRank(xs, v)
			want := oracle.PercentRank(xs, v)
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("trial %d: PercentRank(%v, %v) = %v, oracle %v", trial, xs, v, got, want)
			}
		}
	}
}

// TestPercentRankEdgeCases pins the NaN handling introduced with the
// edge-case audit: an empty sample set or NaN v must surface as NaN
// rather than silently scoring 0 (which would disable the
// cluster-split test instead of flagging the bad input).
func TestPercentRankEdgeCases(t *testing.T) {
	if got := PercentRank(nil, 1); !math.IsNaN(got) {
		t.Errorf("PercentRank(nil) = %v, want NaN", got)
	}
	if got := PercentRank([]float64{1, 2}, math.NaN()); !math.IsNaN(got) {
		t.Errorf("PercentRank(v=NaN) = %v, want NaN", got)
	}
	if got := PercentRank([]float64{1, 2, 3}, 0); got != 0 {
		t.Errorf("PercentRank below all = %v, want 0", got)
	}
	if got := PercentRank([]float64{1, 2, 3}, 4); got != 100 {
		t.Errorf("PercentRank above all = %v, want 100", got)
	}
	// A value equal to the whole sample sits at the mean rank: 50.
	if got := PercentRank([]float64{5, 5, 5}, 5); got != 50 {
		t.Errorf("PercentRank all-equal = %v, want 50", got)
	}
}

// TestMedianMatchesOracle cross-checks Median against the oracle's
// selection-based implementation (even/odd lengths, ties).
func TestMedianMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(30)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(rng.Intn(12)) / 5
		}
		got := Median(xs)
		want := oracle.Median(xs)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("trial %d: Median(%v) = %v, oracle %v", trial, xs, got, want)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
