package vecmath

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) < 1e-9
}

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"single", []float64{4}, 4},
		{"pair", []float64{2, 4}, 3},
		{"negative", []float64{-1, 1}, 0},
		{"many", []float64{1, 2, 3, 4, 5}, 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.in); !almostEqual(got, tt.want) {
				t.Errorf("Mean(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
}

func TestMedian(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"single", []float64{7}, 7},
		{"odd", []float64{3, 1, 2}, 2},
		{"even", []float64{4, 1, 3, 2}, 2.5},
		{"dups", []float64{5, 5, 5, 5}, 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Median(tt.in); !almostEqual(got, tt.want) {
				t.Errorf("Median(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
	if !math.IsNaN(Median(nil)) {
		t.Error("Median(nil) should be NaN")
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("Median mutated its input: %v", in)
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 2, 2}); !almostEqual(got, 0) {
		t.Errorf("StdDev of constants = %v, want 0", got)
	}
	// Population stddev of {1,3} is 1.
	if got := StdDev([]float64{1, 3}); !almostEqual(got, 1) {
		t.Errorf("StdDev({1,3}) = %v, want 1", got)
	}
	if !math.IsNaN(StdDev(nil)) {
		t.Error("StdDev(nil) should be NaN")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -2, 7, 0}
	if got := Min(xs); got != -2 {
		t.Errorf("Min = %v, want -2", got)
	}
	if got := Max(xs); got != 7 {
		t.Errorf("Max = %v, want 7", got)
	}
	if !math.IsInf(Min(nil), 1) {
		t.Error("Min(nil) should be +Inf")
	}
	if !math.IsInf(Max(nil), -1) {
		t.Error("Max(nil) should be -Inf")
	}
}

func TestArgMaxArgMin(t *testing.T) {
	xs := []float64{1, 5, 5, 0}
	if got := ArgMax(xs); got != 1 {
		t.Errorf("ArgMax = %d, want 1 (first of ties)", got)
	}
	if got := ArgMin(xs); got != 3 {
		t.Errorf("ArgMin = %d, want 3", got)
	}
	if ArgMax(nil) != -1 || ArgMin(nil) != -1 {
		t.Error("ArgMax/ArgMin of nil should be -1")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1},
		{50, 3},
		{100, 5},
		{25, 2},
		{-5, 1},
		{105, 5},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); !almostEqual(got, tt.want) {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("Percentile(nil) should be NaN")
	}
}

func TestPercentileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Percentile(xs, 50); !almostEqual(got, 5) {
		t.Errorf("Percentile 50 of {0,10} = %v, want 5", got)
	}
}

func TestPercentRank(t *testing.T) {
	xs := []float64{1, 2, 2, 3}
	// below 2: one element; equal: two → (1 + 1) / 4 * 100 = 50.
	if got := PercentRank(xs, 2); !almostEqual(got, 50) {
		t.Errorf("PercentRank(2) = %v, want 50", got)
	}
	if got := PercentRank(xs, 100); !almostEqual(got, 100) {
		t.Errorf("PercentRank(100) = %v, want 100", got)
	}
	if got := PercentRank(xs, -1); !almostEqual(got, 0) {
		t.Errorf("PercentRank(-1) = %v, want 0", got)
	}
	if !math.IsNaN(PercentRank(nil, 1)) {
		t.Error("PercentRank(nil) should be NaN")
	}
}

func TestDiff(t *testing.T) {
	got := Diff([]float64{1, 4, 9})
	want := []float64{3, 5}
	if len(got) != len(want) {
		t.Fatalf("Diff length = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !almostEqual(got[i], want[i]) {
			t.Errorf("Diff[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if Diff([]float64{1}) != nil {
		t.Error("Diff of single element should be nil")
	}
}

func TestLinspace(t *testing.T) {
	got := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if !almostEqual(got[i], want[i]) {
			t.Errorf("Linspace[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if got[len(got)-1] != 1 {
		t.Error("Linspace must end exactly at hi")
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 1); got != 1 {
		t.Errorf("Clamp(5,0,1) = %v", got)
	}
	if got := Clamp(-5, 0, 1); got != 0 {
		t.Errorf("Clamp(-5,0,1) = %v", got)
	}
	if got := Clamp(0.5, 0, 1); got != 0.5 {
		t.Errorf("Clamp(0.5,0,1) = %v", got)
	}
}

// Property: the mean lies between min and max.
func TestMeanBoundsProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		m := Mean(clean)
		return m >= Min(clean)-1e-6 && m <= Max(clean)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the median of a slice equals the middle of its sorted copy.
func TestMedianSortedProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		m := Median(clean)
		cp := append([]float64(nil), clean...)
		sort.Float64s(cp)
		var want float64
		if len(cp)%2 == 1 {
			want = cp[len(cp)/2]
		} else {
			want = (cp[len(cp)/2-1] + cp[len(cp)/2]) / 2
		}
		return m == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: PercentRank is monotonic in its value argument.
func TestPercentRankMonotonicProperty(t *testing.T) {
	f := func(xs []float64, a, b float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 || math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return PercentRank(clean, a) <= PercentRank(clean, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: StdDev is non-negative and zero for constant slices.
func TestStdDevNonNegativeProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		return StdDev(clean) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
