package vecmath

import "math"

// The helpers below are the sanctioned homes for float comparison in
// the numeric packages; the floatcmp analyzer (internal/lint) forbids
// raw == / != on floats elsewhere so that every exact comparison is a
// visible, deliberate decision.

// EqualExact reports whether a and b are exactly equal as IEEE-754
// values. Use it only where bit-level ties are the point — collapsing
// duplicate k-NN distances, matching a value previously stored from the
// same computation — never for "did two computations agree".
func EqualExact(a, b float64) bool { return a == b }

// IsZero reports whether x is exactly ±0. Use it for hard sentinel
// guards: division-by-zero protection, the Canberra 0/0 := 0 term
// convention, and early exits on a perfect match.
func IsZero(x float64) bool { return x == 0 }

// EqualWithin reports whether a and b agree to within tol, treating two
// NaNs as unequal and equal infinities as equal. tol must be ≥ 0.
func EqualWithin(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	return math.Abs(a-b) <= tol
}
