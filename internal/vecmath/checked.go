package vecmath

import (
	"fmt"
	"math"
)

// Checked integer arithmetic for the condensed-matrix and tile index
// math. The n(n-1)/2 triangular layouts and row*width+col linear
// indexes silently wrap on overflow, turning an out-of-range pool size
// into a corrupted index instead of an error; these helpers centralize
// the bounds proofs and panic on violation, since every call site's
// inputs are validated sizes for which overflow means a programming
// error, not an input error. The idxoverflow lint analyzer steers
// unchecked call sites here.

// CheckedTriNum returns n*(n-1)/2, the number of strictly-upper-
// triangular pairs of n items, panicking if n is negative or the
// product overflows int.
func CheckedTriNum(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("vecmath: CheckedTriNum of negative n=%d", n))
	}
	if n > 2 && n > math.MaxInt/(n-1) {
		panic(fmt.Sprintf("vecmath: CheckedTriNum overflow at n=%d", n))
	}
	return n * (n - 1) / 2
}

// CheckedMulAdd returns a*b + c, panicking when either the product or
// the sum leaves the int range. It is the checked form of the
// row*width+col linear index.
func CheckedMulAdd(a, b, c int) int {
	if a == -1 && b == math.MinInt || b == -1 && a == math.MinInt {
		panic(fmt.Sprintf("vecmath: CheckedMulAdd product overflow: %d*%d", a, b))
	}
	p := a * b
	if a != 0 && p/a != b {
		panic(fmt.Sprintf("vecmath: CheckedMulAdd product overflow: %d*%d", a, b))
	}
	s := p + c
	if (c > 0 && s < p) || (c < 0 && s > p) {
		panic(fmt.Sprintf("vecmath: CheckedMulAdd sum overflow: %d*%d+%d", a, b, c))
	}
	return s
}

// CheckedCondensedOff returns the offset of pair (i, j) in a condensed
// upper-triangle layout over n items — i*(2n-i-1)/2 + (j-i-1) —
// panicking unless 0 <= i < j < n and the arithmetic stays in range.
func CheckedCondensedOff(i, j, n int) int {
	if i < 0 || j <= i || j >= n {
		panic(fmt.Sprintf("vecmath: CheckedCondensedOff pair (%d,%d) out of range for n=%d", i, j, n))
	}
	// Bounds: the offset is < TriNum(n), which itself must fit.
	total := CheckedTriNum(n)
	off := i*(2*n-i-1)/2 + (j - i - 1)
	if off < 0 || off >= total {
		panic(fmt.Sprintf("vecmath: CheckedCondensedOff overflow for (%d,%d) n=%d", i, j, n))
	}
	return off
}

// CheckedUint32 converts a non-negative int to uint32, panicking when
// the value does not fit.
func CheckedUint32(v int) uint32 {
	if v < 0 || v > math.MaxUint32 {
		panic(fmt.Sprintf("vecmath: CheckedUint32 of out-of-range value %d", v))
	}
	return uint32(v)
}

// CheckedUint16 converts a non-negative int to uint16, panicking when
// the value does not fit.
func CheckedUint16(v int) uint16 {
	if v < 0 || v > math.MaxUint16 {
		panic(fmt.Sprintf("vecmath: CheckedUint16 of out-of-range value %d", v))
	}
	return uint16(v)
}
