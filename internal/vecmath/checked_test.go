package vecmath

import (
	"math"
	"testing"
)

// mustPanic runs fn and fails the test unless it panics.
func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

func TestCheckedTriNum(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 3}, {4, 6}, {64, 2016}, {1 << 20, (1 << 20) * (1<<20 - 1) / 2},
	}
	for _, tc := range cases {
		if got := CheckedTriNum(tc.n); got != tc.want {
			t.Errorf("CheckedTriNum(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
	// n*(n-1) fits an int64 up to n ≈ 2^31.5: 2^31 is fine, 2^32 wraps.
	if got, want := CheckedTriNum(1<<31), (1<<31)*((1<<31)-1)/2; got != want {
		t.Errorf("CheckedTriNum(2^31) = %d, want %d", got, want)
	}
	mustPanic(t, "negative n", func() { CheckedTriNum(-1) })
	mustPanic(t, "overflowing n", func() { CheckedTriNum(math.MaxInt) })
	mustPanic(t, "overflowing n (sqrt boundary)", func() { CheckedTriNum(1 << 32) })
}

func TestCheckedMulAdd(t *testing.T) {
	cases := []struct{ a, b, c, want int }{
		{0, 0, 0, 0},
		{3, 4, 5, 17},
		{-3, 4, 5, -7},
		{7, 0, -2, -2},
		{1 << 30, 1 << 30, 1, 1<<60 + 1},
		{math.MaxInt, 1, 0, math.MaxInt},
		{math.MinInt, 1, 0, math.MinInt},
	}
	for _, tc := range cases {
		if got := CheckedMulAdd(tc.a, tc.b, tc.c); got != tc.want {
			t.Errorf("CheckedMulAdd(%d, %d, %d) = %d, want %d", tc.a, tc.b, tc.c, got, tc.want)
		}
	}
	mustPanic(t, "product overflow", func() { CheckedMulAdd(1<<32, 1<<32, 0) })
	mustPanic(t, "MinInt * -1", func() { CheckedMulAdd(math.MinInt, -1, 0) })
	mustPanic(t, "-1 * MinInt", func() { CheckedMulAdd(-1, math.MinInt, 0) })
	mustPanic(t, "positive sum overflow", func() { CheckedMulAdd(math.MaxInt, 1, 1) })
	mustPanic(t, "negative sum overflow", func() { CheckedMulAdd(math.MinInt, 1, -1) })
}

func TestCheckedCondensedOff(t *testing.T) {
	// The condensed layout enumerates pairs (i, j), i < j, row-major:
	// offsets must be dense, ordered, and match the closed form.
	n := 7
	want := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if got := CheckedCondensedOff(i, j, n); got != want {
				t.Fatalf("CheckedCondensedOff(%d, %d, %d) = %d, want %d", i, j, n, got, want)
			}
			want++
		}
	}
	if want != CheckedTriNum(n) {
		t.Fatalf("enumerated %d pairs, want %d", want, CheckedTriNum(n))
	}
	mustPanic(t, "i negative", func() { CheckedCondensedOff(-1, 2, 5) })
	mustPanic(t, "diagonal", func() { CheckedCondensedOff(2, 2, 5) })
	mustPanic(t, "i > j", func() { CheckedCondensedOff(3, 1, 5) })
	mustPanic(t, "j out of range", func() { CheckedCondensedOff(1, 5, 5) })
}

func TestCheckedNarrowing(t *testing.T) {
	if got := CheckedUint32(0); got != 0 {
		t.Errorf("CheckedUint32(0) = %d", got)
	}
	if got := CheckedUint32(math.MaxUint32); got != math.MaxUint32 {
		t.Errorf("CheckedUint32(MaxUint32) = %d", got)
	}
	mustPanic(t, "uint32 negative", func() { CheckedUint32(-1) })
	mustPanic(t, "uint32 too large", func() { CheckedUint32(math.MaxUint32 + 1) })

	if got := CheckedUint16(math.MaxUint16); got != math.MaxUint16 {
		t.Errorf("CheckedUint16(MaxUint16) = %d", got)
	}
	mustPanic(t, "uint16 negative", func() { CheckedUint16(-1) })
	mustPanic(t, "uint16 too large", func() { CheckedUint16(math.MaxUint16 + 1) })
}
