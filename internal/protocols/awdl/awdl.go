// Package awdl generates synthetic Apple Wireless Direct Link action
// frames with ground-truth dissection.
//
// AWDL is one of the paper's proprietary protocols: a link-layer
// protocol without IP encapsulation, structured as a small fixed header
// followed by type-length-value (TLV) records (Stute et al., MobiCom
// 2018). Its TLV structure is what makes alignment-based segmenters
// (Netzob) perform well on it.
package awdl

import (
	"fmt"
	"time"

	"protoclust/internal/netmsg"
	"protoclust/internal/protocols/protogen"
)

// DefaultMessages matches the paper's larger AWDL trace size.
const DefaultMessages = 768

// AWDL action frame subtypes.
const (
	subtypePSF = 0 // periodic synchronization frame
	subtypeMIF = 3 // master indication frame
)

// Generate produces a trace of n AWDL action frames, deterministically
// from seed. AWDL has no transport addresses; the metadata carries the
// sender MAC as source.
func Generate(n int, seed int64) (*netmsg.Trace, error) {
	if n <= 0 {
		return nil, fmt.Errorf("awdl: message count must be positive, got %d", n)
	}
	r := protogen.NewRand(seed)
	tr := &netmsg.Trace{Protocol: "awdl"}

	// A handful of peers advertising periodically.
	type peer struct {
		mac      []byte
		hostname string
		// chanSeq is the peer's 16-slot availability window channel
		// sequence; constant per peer across its frames.
		chanSeq []byte
		// srvHash is the peer's 20-byte service-name hash (as in mDNS
		// service discovery over AWDL); constant per peer.
		srvHash []byte
	}
	peers := make([]peer, 6)
	for i := range peers {
		cs := make([]byte, 16)
		for j := range cs {
			cs[j] = byte(6 + 43*r.Intn(3)) // channels 6, 49, 92
		}
		peers[i] = peer{
			mac:      r.MAC(),
			hostname: r.Hostname(),
			chanSeq:  cs,
			srvHash:  r.Bytes(20),
		}
	}

	now := protogen.Epoch
	for i := 0; i < n; i++ {
		now = now.Add(time.Duration(10+r.Intn(150)) * time.Millisecond)
		p := peers[r.Intn(len(peers))]
		subtype := byte(subtypePSF)
		if r.Intn(3) == 0 {
			subtype = subtypeMIF
		}

		b := protogen.NewBuilder()
		// Fixed header.
		b.U8("category", netmsg.TypeEnum, 0x7f) // vendor specific
		b.Field("oui", netmsg.TypeBytes, []byte{0x00, 0x17, 0xf2})
		b.U8("type", netmsg.TypeEnum, 0x08)
		b.U8("version", netmsg.TypeEnum, 0x10)
		b.U8("subtype", netmsg.TypeEnum, subtype)
		b.U8("reserved", netmsg.TypePad, 0)
		phyTx := uint32(now.UnixNano() / 1000 & 0xffffffff)
		b.U32LE("phy_tx_time", netmsg.TypeTimestamp, phyTx)
		b.U32LE("target_tx_time", netmsg.TypeTimestamp, phyTx+uint32(r.Intn(400)))

		// TLVs. Each TLV is dissected into type, length, and typed value
		// fields, like the public AWDL Wireshark dissector does.
		tlvHdr := func(name string, typ byte, length int) {
			b.U8(name+"_tag", netmsg.TypeEnum, typ)
			b.U16LE(name+"_len", netmsg.TypeUint16, uint16(length))
		}

		// Synchronization parameters TLV (type 0x04).
		tlvHdr("sync", 0x04, 15)
		b.U8("sync_next_ch", netmsg.TypeUint8, byte(6+r.Intn(3)*43)) // 6, 49, 92...
		b.U16LE("sync_tx_counter", netmsg.TypeUint16, uint16(r.Intn(0x10000)))
		b.U8("sync_master_ch", netmsg.TypeUint8, 6)
		b.U8("sync_guard_time", netmsg.TypeUint8, 0)
		b.U16LE("sync_aw_period", netmsg.TypeUint16, 16)
		b.U16LE("sync_af_period", netmsg.TypeUint16, 110)
		b.U16LE("sync_flags", netmsg.TypeFlags, 0x1800)
		b.U16LE("sync_aw_ext_len", netmsg.TypeUint16, 16)
		b.U16LE("sync_aw_common_len", netmsg.TypeUint16, 16)

		// Channel sequence TLV (type 0x18): per-peer constant.
		tlvHdr("chanseq", 0x18, len(p.chanSeq)+3)
		b.U8("chanseq_count", netmsg.TypeUint8, byte(len(p.chanSeq)))
		b.U8("chanseq_encoding", netmsg.TypeEnum, 0)
		b.U8("chanseq_duplicate", netmsg.TypeUint8, 0)
		b.Field("chanseq_channels", netmsg.TypeBytes, p.chanSeq)

		// Election parameters TLV (type 0x05).
		tlvHdr("election", 0x05, 21)
		b.U8("election_flags", netmsg.TypeFlags, 0)
		b.U16LE("election_id", netmsg.TypeUint16, 0)
		b.U8("election_dist", netmsg.TypeUint8, byte(r.Intn(3)))
		b.U8("election_unknown", netmsg.TypePad, 0)
		b.Field("election_master", netmsg.TypeMACAddr, peers[0].mac)
		b.U32LE("election_metric", netmsg.TypeUint32, uint32(60+r.Intn(500)))
		b.U32LE("election_counter", netmsg.TypeUint32, uint32(i)*16)
		b.U16LE("election_pad", netmsg.TypePad, 0)

		if subtype == subtypeMIF {
			// Service parameters TLV (type 0x06), carrying the peer's
			// service-name hash.
			tlvHdr("srv", 0x06, 9+len(p.srvHash))
			b.U16LE("srv_sui", netmsg.TypeUint16, uint16(r.Intn(64)))
			b.U32LE("srv_bitmask", netmsg.TypeFlags, uint32(r.Intn(16))<<8)
			b.U8("srv_unknown1", netmsg.TypePad, 0)
			b.U16LE("srv_unknown2", netmsg.TypePad, 0)
			b.Field("srv_hash", netmsg.TypeBytes, p.srvHash)

			// Arpa hostname TLV (type 0x10): variable-length chars.
			host := p.hostname + ".local"
			tlvHdr("arpa", 0x10, len(host)+2)
			b.U8("arpa_flags", netmsg.TypeFlags, 0x03)
			b.U8("arpa_len", netmsg.TypeUint8, byte(len(host)))
			b.Chars("arpa_name", host)
		}

		// Data path state TLV (type 0x12).
		tlvHdr("datapath", 0x12, 12)
		b.U16LE("dp_flags", netmsg.TypeFlags, 0x8f24)
		b.U16LE("dp_country", netmsg.TypeChars, uint16('U')|uint16('S')<<8)
		b.Field("dp_mac", netmsg.TypeMACAddr, p.mac)
		b.U16LE("dp_ext_flags", netmsg.TypeFlags, uint16(r.Intn(4)))

		// Version TLV (type 0x15).
		tlvHdr("vers", 0x15, 2)
		b.U8("vers_version", netmsg.TypeEnum, 0x20+byte(r.Intn(3)))
		b.U8("vers_devclass", netmsg.TypeEnum, byte(1+r.Intn(2)*9)) // 1 macOS, 10 watchOS

		mac := fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", p.mac[0], p.mac[1], p.mac[2], p.mac[3], p.mac[4], p.mac[5])
		tr.Messages = append(tr.Messages, b.Message(now, mac, "ff:ff:ff:ff:ff:ff", true))
	}
	return tr, nil
}
