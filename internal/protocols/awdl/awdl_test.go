package awdl

import (
	"encoding/binary"
	"testing"
)

func TestFixedHeader(t *testing.T) {
	tr, err := Generate(30, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range tr.Messages {
		if m.Data[0] != 0x7f {
			t.Fatalf("frame %d: category %#x, want 0x7f", i, m.Data[0])
		}
		if m.Data[4] != 0x08 {
			t.Errorf("frame %d: type %#x, want 0x08 (AWDL)", i, m.Data[4])
		}
		sub := m.Data[6]
		if sub != subtypePSF && sub != subtypeMIF {
			t.Errorf("frame %d: unknown subtype %d", i, sub)
		}
	}
}

// walkTLVs iterates the TLV records after the 16-byte fixed header
// (category, OUI, type, version, subtype, reserved, 2×4-byte tx times).
func walkTLVs(data []byte) (types []byte, ok bool) {
	pos := 16
	for pos < len(data) {
		if pos+3 > len(data) {
			return types, false
		}
		typ := data[pos]
		length := int(binary.LittleEndian.Uint16(data[pos+1 : pos+3]))
		types = append(types, typ)
		pos += 3 + length
	}
	return types, pos == len(data)
}

func TestTLVsParseCleanly(t *testing.T) {
	tr, err := Generate(50, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range tr.Messages {
		types, ok := walkTLVs(m.Data)
		if !ok {
			t.Fatalf("frame %d: TLV chain does not tile the frame", i)
		}
		if len(types) < 4 {
			t.Errorf("frame %d: only %d TLVs", i, len(types))
		}
		// Sync parameters and version TLVs are present in every frame.
		var hasSync, hasVersion bool
		for _, typ := range types {
			if typ == 0x04 {
				hasSync = true
			}
			if typ == 0x15 {
				hasVersion = true
			}
		}
		if !hasSync || !hasVersion {
			t.Errorf("frame %d: missing mandatory TLVs (types %v)", i, types)
		}
	}
}

func TestMIFFramesCarryServiceAndHostname(t *testing.T) {
	tr, err := Generate(100, 3)
	if err != nil {
		t.Fatal(err)
	}
	mifs := 0
	for _, m := range tr.Messages {
		if m.Data[6] != subtypeMIF {
			continue
		}
		mifs++
		types, _ := walkTLVs(m.Data)
		var hasSrv, hasArpa bool
		for _, typ := range types {
			if typ == 0x06 {
				hasSrv = true
			}
			if typ == 0x10 {
				hasArpa = true
			}
		}
		if !hasSrv || !hasArpa {
			t.Errorf("MIF frame missing service/arpa TLVs: %v", types)
		}
	}
	if mifs == 0 {
		t.Fatal("no MIF frames in 100 messages")
	}
}

func TestPeerPopulationIsStable(t *testing.T) {
	tr, err := Generate(120, 4)
	if err != nil {
		t.Fatal(err)
	}
	senders := make(map[string]bool)
	for _, m := range tr.Messages {
		senders[m.SrcAddr] = true
	}
	if len(senders) != 6 {
		t.Errorf("distinct senders = %d, want the 6-peer population", len(senders))
	}
}

func TestNoIPContext(t *testing.T) {
	tr, err := Generate(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range tr.Messages {
		if m.DstAddr != "ff:ff:ff:ff:ff:ff" {
			t.Errorf("destination %q, want broadcast MAC", m.DstAddr)
		}
	}
}
