package ntp

import (
	"encoding/binary"
	"testing"
)

func TestGenerateWireFormat(t *testing.T) {
	tr, err := Generate(30, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range tr.Messages {
		if len(m.Data) != 48 {
			t.Fatalf("message %d: %d bytes, want 48", i, len(m.Data))
		}
		mode := m.Data[0] & 0x07
		vn := (m.Data[0] >> 3) & 0x07
		if vn != 4 {
			t.Errorf("message %d: version %d, want 4", i, vn)
		}
		switch {
		case m.IsRequest && mode != 3:
			t.Errorf("message %d: request mode %d, want 3", i, mode)
		case !m.IsRequest && mode != 4:
			t.Errorf("message %d: response mode %d, want 4", i, mode)
		}
	}
}

func TestRequestsAlternateWithResponses(t *testing.T) {
	tr, err := Generate(20, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range tr.Messages {
		want := i%2 == 0
		if m.IsRequest != want {
			t.Fatalf("message %d IsRequest = %v, want %v", i, m.IsRequest, want)
		}
	}
}

func TestTimestampsCarryEpochPrefix(t *testing.T) {
	tr, err := Generate(40, 3)
	if err != nil {
		t.Fatal(err)
	}
	// All transmit timestamps must share their era seconds' top bytes
	// (captured within minutes of each other) — the structure that makes
	// them clusterable.
	var first uint32
	for i, m := range tr.Messages {
		var xmt uint64
		for _, f := range m.Fields {
			if f.Name == "ts_xmt" {
				xmt = binary.BigEndian.Uint64(m.Data[f.Offset:f.End()])
			}
		}
		secs := uint32(xmt >> 32)
		if secs == 0 {
			t.Fatalf("message %d: zero transmit timestamp", i)
		}
		if i == 0 {
			first = secs
			continue
		}
		if secs>>16 != first>>16 {
			t.Errorf("message %d: seconds %#x far from first %#x", i, secs, first)
		}
	}
}

func TestServerResponsesHaveStratumAndRefid(t *testing.T) {
	tr, err := Generate(30, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range tr.Messages {
		stratum := m.Data[1]
		refid := m.Data[12:16]
		zeroRef := refid[0] == 0 && refid[1] == 0 && refid[2] == 0 && refid[3] == 0
		if m.IsRequest {
			if stratum != 0 || !zeroRef {
				t.Errorf("message %d: client with stratum %d / refid %v", i, stratum, refid)
			}
		} else {
			if stratum == 0 || zeroRef {
				t.Errorf("message %d: server without stratum/refid", i)
			}
		}
	}
}
