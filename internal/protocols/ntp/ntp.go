// Package ntp generates synthetic Network Time Protocol traces
// (RFC 958/5905 wire format, 48-byte fixed structure) with ground-truth
// dissection.
//
// NTP is the paper's fixed-structure protocol: every message has the
// same 12 fields, four of which are 8-byte timestamps whose seconds
// advance slowly over the capture while the fractional part is
// high-entropy — the property behind Figures 2 and 3.
package ntp

import (
	"fmt"
	"time"

	"protoclust/internal/netmsg"
	"protoclust/internal/protocols/protogen"
)

// Port is the well-known NTP UDP port.
const Port = 123

// Generate produces a trace of n NTP messages alternating client
// requests and server responses, deterministically from seed.
func Generate(n int, seed int64) (*netmsg.Trace, error) {
	if n <= 0 {
		return nil, fmt.Errorf("ntp: message count must be positive, got %d", n)
	}
	r := protogen.NewRand(seed)
	tr := &netmsg.Trace{Protocol: "ntp"}

	servers := make([][]byte, 4)
	for i := range servers {
		servers[i] = r.IPv4From([3]byte{10, 0, 0}, 8)
	}

	now := protogen.Epoch
	for i := 0; i < n; i++ {
		// Successive polls a few seconds apart.
		now = now.Add(time.Duration(500+r.Intn(4000)) * time.Millisecond)
		isRequest := i%2 == 0
		server := servers[r.Intn(len(servers))]

		b := protogen.NewBuilder()
		mode := byte(3) // client
		stratum := byte(0)
		if !isRequest {
			mode = 4 // server
			stratum = byte(2 + r.Intn(3))
		}
		liVnMode := byte(0<<6 | 4<<3) // LI=0, VN=4
		b.U8("li_vn_mode", netmsg.TypeFlags, liVnMode|mode)
		b.U8("stratum", netmsg.TypeUint8, stratum)
		b.U8("poll", netmsg.TypeUint8, byte(6+r.Intn(4)))
		b.U8("precision", netmsg.TypeUint8, byte(0xe8+r.Intn(8)))
		b.U32("rootdelay", netmsg.TypeUint32, uint32(r.Intn(0x4000)))
		b.U32("rootdispersion", netmsg.TypeUint32, uint32(r.Intn(0x8000)))
		if isRequest {
			b.Field("refid", netmsg.TypeIPv4, []byte{0, 0, 0, 0})
		} else {
			b.Field("refid", netmsg.TypeIPv4, server)
		}
		for _, name := range []string{"reftime", "org", "rec", "xmt"} {
			secs := protogen.NTPEra(now.Add(-time.Duration(r.Intn(30)) * time.Second))
			frac := uint32(r.Uint64())
			if isRequest && name == "reftime" {
				secs, frac = 0, 0 // unsynchronized client
			}
			b.U64("ts_"+name, netmsg.TypeTimestamp, uint64(secs)<<32|uint64(frac))
		}

		client := fmt.Sprintf("10.0.1.%d:%d", 1+r.Intn(50), 1024+r.Intn(60000))
		srv := fmt.Sprintf("10.0.0.%d:%d", server[3], Port)
		src, dst := client, srv
		if !isRequest {
			src, dst = srv, client
		}
		tr.Messages = append(tr.Messages, b.Message(now, src, dst, isRequest))
	}
	return tr, nil
}
