// Package protocols provides a registry over the synthetic trace
// generators so the evaluation harness and CLI tools can address every
// test protocol by name.
package protocols

import (
	"fmt"
	"sort"

	"protoclust/internal/netmsg"
	"protoclust/internal/protocols/au"
	"protoclust/internal/protocols/awdl"
	"protoclust/internal/protocols/dhcp"
	"protoclust/internal/protocols/dns"
	"protoclust/internal/protocols/modbus"
	"protoclust/internal/protocols/nbns"
	"protoclust/internal/protocols/ntp"
	"protoclust/internal/protocols/smb"
)

// GenerateFunc produces a ground-truth-annotated trace of n messages.
type GenerateFunc func(n int, seed int64) (*netmsg.Trace, error)

// generators maps protocol names to their trace generators.
var generators = map[string]GenerateFunc{
	"dhcp": dhcp.Generate,
	"dns":  dns.Generate,
	"nbns": nbns.Generate,
	"ntp":  ntp.Generate,
	"smb":  smb.Generate,
	"awdl": awdl.Generate,
	"au":   au.Generate,
	// modbus is an extension protocol beyond the paper's evaluation set
	// (not part of PaperTraces); see the modbus package comment.
	"modbus": modbus.Generate,
}

// Names returns all registered protocol names in sorted order.
func Names() []string {
	names := make([]string, 0, len(generators))
	for name := range generators {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Generate produces a trace for the named protocol.
func Generate(name string, n int, seed int64) (*netmsg.Trace, error) {
	gen, ok := generators[name]
	if !ok {
		return nil, fmt.Errorf("protocols: unknown protocol %q (have %v)", name, Names())
	}
	return gen(n, seed)
}

// TraceSpec names one evaluation trace: a protocol and its message
// count, as used in Tables I and II.
type TraceSpec struct {
	// Protocol is the registered protocol name.
	Protocol string
	// Messages is the trace size to generate.
	Messages int
}

// String renders the spec as "proto-N", e.g. "ntp-1000".
func (s TraceSpec) String() string { return fmt.Sprintf("%s-%d", s.Protocol, s.Messages) }

// PaperTraces returns the trace specs evaluated in the paper: 1000 and
// 100 messages for the public protocols, 768 and 100 for AWDL, and 123
// for AU (Section IV-A).
func PaperTraces() []TraceSpec {
	return []TraceSpec{
		{"dhcp", 1000}, {"dns", 1000}, {"nbns", 1000}, {"ntp", 1000}, {"smb", 1000},
		{"awdl", awdl.DefaultMessages},
		{"dhcp", 100}, {"dns", 100}, {"nbns", 100}, {"ntp", 100}, {"smb", 100},
		{"awdl", 100},
		{"au", au.DefaultMessages},
	}
}
