// Package dhcp generates synthetic Dynamic Host Configuration Protocol
// traces (RFC 2131 wire format: fixed BOOTP header plus TLV options)
// with ground-truth dissection.
//
// DHCP is one of the paper's complex protocols: a large fixed header
// with address fields and big padding blocks, followed by a variable
// option list mixing enums, addresses, durations, and host-name chars.
// The paper notes such protocols need large traces for good recall.
package dhcp

import (
	"fmt"
	"time"

	"protoclust/internal/netmsg"
	"protoclust/internal/protocols/protogen"
)

// ServerPort and ClientPort are the well-known DHCP UDP ports.
const (
	ServerPort = 67
	ClientPort = 68
)

// DHCP message types (option 53).
const (
	discover = 1
	offer    = 2
	request  = 3
	ack      = 5
)

// Generate produces a trace of n DHCP messages following
// discover/offer/request/ack exchanges, deterministically from seed.
func Generate(n int, seed int64) (*netmsg.Trace, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dhcp: message count must be positive, got %d", n)
	}
	r := protogen.NewRand(seed)
	tr := &netmsg.Trace{Protocol: "dhcp"}

	// A stable site population of clients renewing their leases over the
	// capture, as in the smia-2011 network the paper drew from. Each
	// client advances its transaction ID sequentially from a random
	// per-boot base (Windows/dhclient behaviour), so xids do not form a
	// uniform random fog over the value space.
	type client struct {
		mac      []byte
		hostname string
		leased   []byte
		xid      uint32
	}
	pool := make([]client, 60)
	for i := range pool {
		pool[i] = client{
			mac:      r.HardwareMAC(),
			hostname: r.Hostname(),
			leased:   r.IPv4From([3]byte{10, 3, 0}, 200),
			xid:      uint32(r.Intn(0x40)) << 24,
		}
	}

	now := protogen.Epoch
	serverIP := []byte{10, 3, 0, 1}
	for len(tr.Messages) < n {
		now = now.Add(time.Duration(2+r.Intn(30)) * time.Second)
		c := &pool[r.Intn(len(pool))]
		c.xid += 1 + uint32(r.Intn(3))
		xid := c.xid
		mac := c.mac
		hostname := c.hostname
		leased := c.leased
		clientAddr := "0.0.0.0:68"
		serverAddr := "10.3.0.1:67"

		exchange := []byte{discover, offer, request, ack}
		for step, msgType := range exchange {
			if len(tr.Messages) >= n {
				break
			}
			fromClient := msgType == discover || msgType == request
			b := buildMessage(r, msgType, xid, uint16(step), mac, hostname, leased, serverIP)
			src, dst := clientAddr, serverAddr
			if !fromClient {
				src, dst = serverAddr, "255.255.255.255:68"
			}
			tr.Messages = append(tr.Messages,
				b.Message(now.Add(time.Duration(step*50)*time.Millisecond), src, dst, fromClient))
		}
	}
	return tr, nil
}

func buildMessage(r *protogen.Rand, msgType byte, xid uint32, secs uint16, mac []byte, hostname string, leased, serverIP []byte) *protogen.Builder {
	b := protogen.NewBuilder()
	fromClient := msgType == discover || msgType == request
	op := byte(2) // BOOTREPLY
	if fromClient {
		op = 1 // BOOTREQUEST
	}
	b.U8("op", netmsg.TypeEnum, op)
	b.U8("htype", netmsg.TypeEnum, 1)
	b.U8("hlen", netmsg.TypeUint8, 6)
	b.U8("hops", netmsg.TypeUint8, 0)
	b.U32("xid", netmsg.TypeID, xid)
	b.U16("secs", netmsg.TypeUint16, secs)
	b.U16("flags", netmsg.TypeFlags, 0x8000)
	zero := []byte{0, 0, 0, 0}
	b.Field("ciaddr", netmsg.TypeIPv4, zero)
	if fromClient {
		b.Field("yiaddr", netmsg.TypeIPv4, zero)
		b.Field("siaddr", netmsg.TypeIPv4, zero)
	} else {
		b.Field("yiaddr", netmsg.TypeIPv4, leased)
		b.Field("siaddr", netmsg.TypeIPv4, serverIP)
	}
	b.Field("giaddr", netmsg.TypeIPv4, zero)
	chaddr := make([]byte, 16)
	copy(chaddr, mac)
	b.Field("chaddr", netmsg.TypeMACAddr, chaddr)
	b.Pad("sname", 64)
	b.Pad("file", 128)
	b.Field("magic", netmsg.TypeBytes, []byte{0x63, 0x82, 0x53, 0x63})

	// Options (each option is type, length, value — dissected as
	// separate fields like Wireshark does).
	opt8 := func(name string, code, v byte) {
		b.U8(name+"_code", netmsg.TypeEnum, code)
		b.U8(name+"_len", netmsg.TypeUint8, 1)
		b.U8(name, netmsg.TypeEnum, v)
	}
	optBytes := func(name string, code byte, typ netmsg.FieldType, v []byte) {
		b.U8(name+"_code", netmsg.TypeEnum, code)
		b.U8(name+"_len", netmsg.TypeUint8, byte(len(v)))
		b.Field(name, typ, v)
	}

	opt8("dhcp_msg_type", 53, msgType)
	switch msgType {
	case discover:
		optBytes("client_id", 61, netmsg.TypeMACAddr, append([]byte{1}, mac...))
		optBytes("hostname", 12, netmsg.TypeChars, []byte(hostname))
		optBytes("param_list", 55, netmsg.TypeBytes, []byte{1, 3, 6, 15, 31, 33})
	case offer, ack:
		optBytes("server_id", 54, netmsg.TypeIPv4, serverIP)
		var lease [4]byte
		secsLease := uint32(3600 * (1 + r.Intn(24)))
		lease[0] = byte(secsLease >> 24)
		lease[1] = byte(secsLease >> 16)
		lease[2] = byte(secsLease >> 8)
		lease[3] = byte(secsLease)
		optBytes("lease_time", 51, netmsg.TypeUint32, lease[:])
		optBytes("subnet_mask", 1, netmsg.TypeIPv4, []byte{255, 255, 255, 0})
		optBytes("router", 3, netmsg.TypeIPv4, serverIP)
		optBytes("dns_server", 6, netmsg.TypeIPv4, []byte{10, 3, 0, 2})
	case request:
		optBytes("requested_ip", 50, netmsg.TypeIPv4, leased)
		optBytes("server_id", 54, netmsg.TypeIPv4, serverIP)
		optBytes("client_id", 61, netmsg.TypeMACAddr, append([]byte{1}, mac...))
		optBytes("hostname", 12, netmsg.TypeChars, []byte(hostname))
	}
	b.U8("opt_end", netmsg.TypeEnum, 255)
	return b
}
