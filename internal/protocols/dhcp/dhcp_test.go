package dhcp

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func TestBOOTPLayout(t *testing.T) {
	tr, err := Generate(20, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range tr.Messages {
		op := m.Data[0]
		if m.IsRequest && op != 1 {
			t.Errorf("message %d: request op = %d, want 1", i, op)
		}
		if !m.IsRequest && op != 2 {
			t.Errorf("message %d: reply op = %d, want 2", i, op)
		}
		if m.Data[1] != 1 || m.Data[2] != 6 {
			t.Errorf("message %d: htype/hlen = %d/%d, want 1/6", i, m.Data[1], m.Data[2])
		}
		// Magic cookie after the 236-byte fixed part.
		if !bytes.Equal(m.Data[236:240], []byte{0x63, 0x82, 0x53, 0x63}) {
			t.Fatalf("message %d: missing magic cookie", i)
		}
		if m.Data[len(m.Data)-1] != 255 {
			t.Errorf("message %d: missing end option", i)
		}
	}
}

func TestExchangeSharesXid(t *testing.T) {
	tr, err := Generate(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The first four messages form one discover/offer/request/ack
	// exchange sharing one xid.
	xid := binary.BigEndian.Uint32(tr.Messages[0].Data[4:8])
	for i := 1; i < 4; i++ {
		if got := binary.BigEndian.Uint32(tr.Messages[i].Data[4:8]); got != xid {
			t.Errorf("message %d xid %#x differs from exchange xid %#x", i, got, xid)
		}
	}
}

func TestXidsAreSequentialPerClient(t *testing.T) {
	tr, err := Generate(400, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Group exchanges by client MAC; xids must increase per client.
	lastXid := make(map[string]uint32)
	for i := 0; i < len(tr.Messages); i += 4 {
		m := tr.Messages[i]
		mac := string(m.Data[28:34])
		xid := binary.BigEndian.Uint32(m.Data[4:8])
		if prev, ok := lastXid[mac]; ok && xid <= prev {
			t.Fatalf("client %x xid %d not increasing (prev %d)", mac, xid, prev)
		}
		lastXid[mac] = xid
	}
	if len(lastXid) < 30 {
		t.Errorf("client population = %d, want a stable pool of ~60", len(lastXid))
	}
}

func TestOffersCarryLease(t *testing.T) {
	tr, err := Generate(40, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range tr.Messages {
		if m.IsRequest {
			continue
		}
		// yiaddr (offset 16) must be a 10.3.0.x lease in replies.
		yiaddr := m.Data[16:20]
		if yiaddr[0] != 10 || yiaddr[1] != 3 || yiaddr[2] != 0 || yiaddr[3] == 0 {
			t.Fatalf("reply yiaddr = %v, want 10.3.0.x", yiaddr)
		}
	}
}

func TestClientMACsUseVendorOUIs(t *testing.T) {
	tr, err := Generate(100, 5)
	if err != nil {
		t.Fatal(err)
	}
	ouis := make(map[[3]byte]bool)
	for _, m := range tr.Messages {
		ouis[[3]byte{m.Data[28], m.Data[29], m.Data[30]}] = true
	}
	if len(ouis) > 4 {
		t.Errorf("chaddr OUIs = %d distinct, want ≤ 4 (site vendor pool)", len(ouis))
	}
}
