// Package nbns generates synthetic NetBIOS Name Service traces
// (RFC 1002 wire format) with ground-truth dissection.
//
// NBNS resembles DNS but encodes names with first-level encoding into
// fixed 32-character sequences, giving the trace fixed-length binary
// fields plus long constant-alphabet char runs.
package nbns

import (
	"fmt"
	"time"

	"protoclust/internal/netmsg"
	"protoclust/internal/protocols/protogen"
)

// Port is the well-known NBNS UDP port.
const Port = 137

// Generate produces a trace of n NBNS messages (name queries,
// registrations, and positive responses), deterministically from seed.
func Generate(n int, seed int64) (*netmsg.Trace, error) {
	if n <= 0 {
		return nil, fmt.Errorf("nbns: message count must be positive, got %d", n)
	}
	r := protogen.NewRand(seed)
	tr := &netmsg.Trace{Protocol: "nbns"}

	now := protogen.Epoch
	for len(tr.Messages) < n {
		now = now.Add(time.Duration(100+r.Intn(2000)) * time.Millisecond)
		id := uint16(r.Intn(0x10000))
		name := r.NetBIOSName()
		host := fmt.Sprintf("10.2.0.%d:%d", 1+r.Intn(80), Port)
		bcast := fmt.Sprintf("10.2.0.255:%d", Port)

		kind := r.Intn(3)
		switch kind {
		case 0: // name query request (broadcast)
			b := buildQuery(id, name, false)
			tr.Messages = append(tr.Messages, b.Message(now, host, bcast, true))
		case 1: // name registration request
			b := buildRegistration(r, id, name)
			tr.Messages = append(tr.Messages, b.Message(now, host, bcast, true))
		default: // query + positive response pair
			b := buildQuery(id, name, false)
			tr.Messages = append(tr.Messages, b.Message(now, host, bcast, true))
			if len(tr.Messages) >= n {
				break
			}
			resp := buildResponse(r, id, name)
			responder := fmt.Sprintf("10.2.0.%d:%d", 100+r.Intn(8), Port)
			tr.Messages = append(tr.Messages,
				resp.Message(now.Add(time.Duration(1+r.Intn(20))*time.Millisecond), responder, host, false))
		}
	}
	if len(tr.Messages) > n {
		tr.Messages = tr.Messages[:n]
	}
	return tr, nil
}

// EncodeName applies NBNS first-level encoding: the 16-byte padded name
// (15 chars + suffix) maps each nibble to 'A'+nibble, yielding 32 chars,
// wrapped in a length byte and zero terminator.
func EncodeName(name string, suffix byte) []byte {
	padded := make([]byte, 16)
	for i := range padded {
		padded[i] = ' '
	}
	copy(padded, name)
	padded[15] = suffix
	out := make([]byte, 0, 34)
	out = append(out, 32)
	for _, c := range padded {
		out = append(out, 'A'+(c>>4), 'A'+(c&0x0f))
	}
	return append(out, 0)
}

func buildHeader(b *protogen.Builder, id uint16, flags uint16, qd, an, ns, ar uint16) {
	b.U16("id", netmsg.TypeID, id)
	b.U16("flags", netmsg.TypeFlags, flags)
	b.U16("qdcount", netmsg.TypeUint16, qd)
	b.U16("ancount", netmsg.TypeUint16, an)
	b.U16("nscount", netmsg.TypeUint16, ns)
	b.U16("arcount", netmsg.TypeUint16, ar)
}

func buildQuery(id uint16, name string, unicast bool) *protogen.Builder {
	b := protogen.NewBuilder()
	flags := uint16(0x0110) // broadcast name query
	if unicast {
		flags = 0x0100
	}
	buildHeader(b, id, flags, 1, 0, 0, 0)
	b.Field("qname", netmsg.TypeChars, EncodeName(name, 0x00))
	b.U16("qtype", netmsg.TypeEnum, 0x0020) // NB
	b.U16("qclass", netmsg.TypeEnum, 1)
	return b
}

func buildRegistration(r *protogen.Rand, id uint16, name string) *protogen.Builder {
	b := protogen.NewBuilder()
	buildHeader(b, id, 0x2910, 1, 0, 0, 1)
	b.Field("qname", netmsg.TypeChars, EncodeName(name, 0x00))
	b.U16("qtype", netmsg.TypeEnum, 0x0020)
	b.U16("qclass", netmsg.TypeEnum, 1)
	// Additional record: the address being registered.
	b.U16("rr_name", netmsg.TypeUint16, 0xc00c)
	b.U16("rr_type", netmsg.TypeEnum, 0x0020)
	b.U16("rr_class", netmsg.TypeEnum, 1)
	b.U32("rr_ttl", netmsg.TypeUint32, 300000)
	b.U16("rr_rdlength", netmsg.TypeUint16, 6)
	b.U16("nb_flags", netmsg.TypeFlags, 0x0000)
	b.Field("nb_addr", netmsg.TypeIPv4, r.IPv4From([3]byte{10, 2, 0}, 80))
	return b
}

func buildResponse(r *protogen.Rand, id uint16, name string) *protogen.Builder {
	b := protogen.NewBuilder()
	buildHeader(b, id, 0x8500, 0, 1, 0, 0)
	b.Field("rr_name", netmsg.TypeChars, EncodeName(name, 0x00))
	b.U16("rr_type", netmsg.TypeEnum, 0x0020)
	b.U16("rr_class", netmsg.TypeEnum, 1)
	b.U32("rr_ttl", netmsg.TypeUint32, uint32(60000*(1+r.Intn(5))))
	b.U16("rr_rdlength", netmsg.TypeUint16, 6)
	b.U16("nb_flags", netmsg.TypeFlags, 0x0000)
	b.Field("nb_addr", netmsg.TypeIPv4, r.IPv4From([3]byte{10, 2, 0}, 108))
	return b
}
