package nbns

import (
	"testing"
)

func TestEncodeNameLayout(t *testing.T) {
	got := EncodeName("FILESRV", 0x20)
	if len(got) != 34 {
		t.Fatalf("encoded length = %d, want 34 (len byte + 32 chars + terminator)", len(got))
	}
	if got[0] != 32 {
		t.Errorf("length byte = %d, want 32", got[0])
	}
	if got[33] != 0 {
		t.Error("missing zero terminator")
	}
	// Every encoded char must be in 'A'..'P' (nibble + 'A').
	for i := 1; i <= 32; i++ {
		if got[i] < 'A' || got[i] > 'A'+15 {
			t.Fatalf("encoded char %d = %c out of first-level range", i, got[i])
		}
	}
}

func TestEncodeNameRoundTrip(t *testing.T) {
	enc := EncodeName("DC01", 0x00)
	// Decode: each pair of chars is (hi-'A')<<4 | (lo-'A').
	var dec []byte
	for i := 1; i < 33; i += 2 {
		dec = append(dec, (enc[i]-'A')<<4|(enc[i+1]-'A'))
	}
	if string(dec[:4]) != "DC01" {
		t.Errorf("decoded %q, want DC01", dec[:4])
	}
	for i := 4; i < 15; i++ {
		if dec[i] != ' ' {
			t.Errorf("padding byte %d = %q, want space", i, dec[i])
		}
	}
	if dec[15] != 0x00 {
		t.Errorf("suffix = %#x, want 0", dec[15])
	}
}

func TestEncodeNameSuffix(t *testing.T) {
	enc := EncodeName("X", 0x20)
	dec20 := (enc[31]-'A')<<4 | (enc[32] - 'A')
	if dec20 != 0x20 {
		t.Errorf("suffix decoded to %#x, want 0x20", dec20)
	}
}

func TestGenerateMessageKinds(t *testing.T) {
	tr, err := Generate(60, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Messages) != 60 {
		t.Fatalf("messages = %d", len(tr.Messages))
	}
	var queries, responses int
	for _, m := range tr.Messages {
		if m.IsRequest {
			queries++
		} else {
			responses++
		}
	}
	if queries == 0 || responses == 0 {
		t.Errorf("kinds missing: queries=%d responses=%d", queries, responses)
	}
}

func TestGenerateTruncatesExactly(t *testing.T) {
	// The query+response branch can overshoot; Generate must still
	// return exactly n.
	for _, n := range []int{1, 2, 7, 33} {
		tr, err := Generate(n, 9)
		if err != nil {
			t.Fatal(err)
		}
		if len(tr.Messages) != n {
			t.Errorf("Generate(%d) produced %d messages", n, len(tr.Messages))
		}
	}
}
