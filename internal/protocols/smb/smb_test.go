package smb

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func TestHeaderLayout(t *testing.T) {
	tr, err := Generate(20, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range tr.Messages {
		if !bytes.Equal(m.Data[0:4], []byte{0xff, 'S', 'M', 'B'}) {
			t.Fatalf("message %d lacks SMB magic: %x", i, m.Data[0:4])
		}
		flags := m.Data[9]
		isReply := flags&0x80 != 0
		if isReply == m.IsRequest {
			t.Errorf("message %d: reply flag %v contradicts IsRequest %v", i, isReply, m.IsRequest)
		}
	}
}

func TestDialogueCommandSequence(t *testing.T) {
	tr, err := Generate(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantCmds := []byte{
		cmdNegotiate, cmdNegotiate,
		cmdSessionSetup, cmdSessionSetup,
		cmdTreeConnect, cmdTreeConnect,
		cmdReadAndX, cmdReadAndX,
		cmdTrans2, cmdTrans2,
	}
	for i, m := range tr.Messages {
		if m.Data[4] != wantCmds[i] {
			t.Errorf("message %d command %#x, want %#x", i, m.Data[4], wantCmds[i])
		}
	}
}

func TestIDsOccupyNarrowRanges(t *testing.T) {
	tr, err := Generate(200, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range tr.Messages {
		tid := binary.LittleEndian.Uint16(m.Data[24:26])
		pid := binary.LittleEndian.Uint16(m.Data[26:28])
		if pid < 1000 || pid >= 4000 {
			t.Fatalf("message %d: pid %d outside process-id range", i, pid)
		}
		if tid == 0 || tid > 1024 {
			t.Fatalf("message %d: tid %d outside sequential range", i, tid)
		}
	}
}

func TestSignaturesVaryPerMessage(t *testing.T) {
	tr, err := Generate(60, 4)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for _, m := range tr.Messages {
		seen[string(m.Data[14:22])] = true
	}
	if len(seen) < 55 {
		t.Errorf("only %d distinct signatures in 60 messages", len(seen))
	}
}

func TestReadResponseCarriesFileBlock(t *testing.T) {
	tr, err := Generate(10, 5)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range tr.Messages {
		for _, f := range m.Fields {
			if f.Name == "file_data" {
				found = true
				if f.Length != 256 {
					t.Errorf("file_data length %d, want 256", f.Length)
				}
				if !bytes.Equal(m.Data[f.Offset:f.End()], fileBlock) {
					t.Error("file_data differs from the shared file block")
				}
			}
		}
	}
	if !found {
		t.Fatal("no ReadAndX response with file data in the first dialogue")
	}
}

func TestSessionKeysAreZero(t *testing.T) {
	tr, err := Generate(20, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range tr.Messages {
		for _, f := range m.Fields {
			if f.Name != "session_key" {
				continue
			}
			for _, b := range m.Data[f.Offset:f.End()] {
				if b != 0 {
					t.Fatal("session key not zero (SMB1 sends 0 on the wire)")
				}
			}
		}
	}
}

func TestTrans2ResponseTimestamps(t *testing.T) {
	tr, err := Generate(10, 7)
	if err != nil {
		t.Fatal(err)
	}
	var tsFields int
	for _, m := range tr.Messages {
		for _, f := range m.Fields {
			if f.Type == "timestamp" {
				tsFields++
				v := binary.LittleEndian.Uint64(m.Data[f.Offset:f.End()])
				// FILETIME for 2011 is ~1.29e17 ticks.
				if v < 100_000_000_000_000_000 || v > 150_000_000_000_000_000 {
					t.Errorf("timestamp %d outside plausible FILETIME range", v)
				}
			}
		}
	}
	if tsFields == 0 {
		t.Error("no timestamp fields generated")
	}
}
