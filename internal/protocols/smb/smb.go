// Package smb generates synthetic Server Message Block (SMB1) traces
// with ground-truth dissection.
//
// SMB is the paper's hardest protocol: its header carries an 8-byte
// security signature that is random across messages (the reason for
// SMB's low clustering recall — random content cannot be grouped by
// value), alongside FILETIME timestamps, enum commands, flag words, and
// variable-length dialect/OS strings.
package smb

import (
	"fmt"
	"time"

	"protoclust/internal/netmsg"
	"protoclust/internal/protocols/protogen"
)

// Port is the well-known SMB-over-TCP port.
const Port = 445

// SMB1 command codes used by the generator.
const (
	cmdNegotiate    = 0x72
	cmdSessionSetup = 0x73
	cmdTreeConnect  = 0x75
	cmdTrans2       = 0x32
	cmdReadAndX     = 0x2e
)

// fileBlock is the 256-byte file content served by every ReadAndX
// response (the clients re-read the same file). A large constant block
// keeps SMB messages long — which is what breaks alignment-based
// segmentation on the 1000-message trace — without adding artificial
// entropy.
var fileBlock = func() []byte {
	const text = "[autorun]\r\nopen=setup.exe\r\nicon=setup.exe,0\r\n" +
		"label=Corporate File Share\r\n; mounted from \\\\FILESRV\\SHARE0\r\n"
	out := make([]byte, 256)
	for i := range out {
		out[i] = text[i%len(text)]
	}
	return out
}()

// Generate produces a trace of n SMB messages following
// negotiate/session-setup/tree-connect/trans2 dialogues,
// deterministically from seed.
func Generate(n int, seed int64) (*netmsg.Trace, error) {
	if n <= 0 {
		return nil, fmt.Errorf("smb: message count must be positive, got %d", n)
	}
	r := protogen.NewRand(seed)
	tr := &netmsg.Trace{Protocol: "smb"}

	now := protogen.Epoch
	server := "10.4.0.5:445"
	// Servers allocate UIDs and TIDs sequentially from small bases and
	// clients use their (small) process IDs, so SMB identifier values
	// occupy narrow ranges rather than the full 16-bit space.
	nextUID := uint16(2048)
	nextTID := uint16(1)
	for len(tr.Messages) < n {
		now = now.Add(time.Duration(1+r.Intn(10)) * time.Second)
		client := fmt.Sprintf("10.4.0.%d:%d", 10+r.Intn(60), 1024+r.Intn(60000))
		pid := uint16(1000 + r.Intn(3000))
		nextUID += uint16(1 + r.Intn(3))
		nextTID += uint16(1 + r.Intn(2))
		uid := nextUID
		tid := nextTID
		mid := uint16(1 + r.Intn(8))

		steps := []struct {
			cmd     byte
			request bool
		}{
			{cmdNegotiate, true}, {cmdNegotiate, false},
			{cmdSessionSetup, true}, {cmdSessionSetup, false},
			{cmdTreeConnect, true}, {cmdTreeConnect, false},
			{cmdReadAndX, true}, {cmdReadAndX, false},
			{cmdTrans2, true}, {cmdTrans2, false},
		}
		for step, st := range steps {
			if len(tr.Messages) >= n {
				break
			}
			mid += uint16(step / 2)
			b := buildMessage(r, now, st.cmd, st.request, pid, uid, tid, mid)
			src, dst := client, server
			if !st.request {
				src, dst = server, client
			}
			tr.Messages = append(tr.Messages,
				b.Message(now.Add(time.Duration(step*20)*time.Millisecond), src, dst, st.request))
		}
	}
	return tr, nil
}

func buildMessage(r *protogen.Rand, now time.Time, cmd byte, request bool, pid, uid, tid, mid uint16) *protogen.Builder {
	b := protogen.NewBuilder()
	// SMB header (32 bytes).
	b.Field("smb_magic", netmsg.TypeBytes, []byte{0xff, 'S', 'M', 'B'})
	b.U8("command", netmsg.TypeEnum, cmd)
	status := uint32(0)
	b.U32LE("status", netmsg.TypeUint32, status)
	flags := byte(0x18)
	if !request {
		flags |= 0x80
	}
	b.U8("flags", netmsg.TypeFlags, flags)
	b.U16LE("flags2", netmsg.TypeFlags, 0xc807)
	b.U16LE("pid_high", netmsg.TypeUint16, 0)
	// The security signature: 8 random bytes — the paper's prime example
	// of unclusterable high-entropy content (Section IV-C).
	b.Field("signature", netmsg.TypeBytes, r.Bytes(8))
	b.U16LE("reserved", netmsg.TypeUint16, 0)
	b.U16LE("tid", netmsg.TypeID, tid)
	b.U16LE("pid_low", netmsg.TypeID, pid)
	b.U16LE("uid", netmsg.TypeID, uid)
	b.U16LE("mid", netmsg.TypeID, mid)

	switch cmd {
	case cmdNegotiate:
		if request {
			b.U8("wct", netmsg.TypeUint8, 0)
			dialects := []byte{}
			for _, d := range []string{"PC NETWORK PROGRAM 1.0", "LANMAN1.0", "NT LM 0.12"} {
				dialects = append(dialects, 0x02)
				dialects = append(dialects, d...)
				dialects = append(dialects, 0)
			}
			b.U16LE("bcc", netmsg.TypeUint16, uint16(len(dialects)))
			b.Field("dialects", netmsg.TypeChars, dialects)
		} else {
			b.U8("wct", netmsg.TypeUint8, 17)
			b.U16LE("dialect_index", netmsg.TypeEnum, 2)
			b.U8("security_mode", netmsg.TypeFlags, 0x03)
			b.U16LE("max_mpx", netmsg.TypeUint16, 50)
			b.U16LE("max_vcs", netmsg.TypeUint16, 1)
			b.U32LE("max_buffer", netmsg.TypeUint32, 16644)
			b.U32LE("max_raw", netmsg.TypeUint32, 65536)
			b.U32LE("session_key", netmsg.TypeID, 0) // SMB1 sends 0 on the wire
			b.U32LE("capabilities", netmsg.TypeFlags, 0x8000e3fd)
			b.U64LE("system_time", netmsg.TypeTimestamp, protogen.Filetime(now))
			b.U16LE("timezone", netmsg.TypeUint16, 0xff88)
			b.U8("key_len", netmsg.TypeUint8, 8)
			b.U16LE("bcc", netmsg.TypeUint16, 8)
			b.Field("challenge", netmsg.TypeBytes, r.Bytes(8))
		}
	case cmdSessionSetup:
		if request {
			b.U8("wct", netmsg.TypeUint8, 13)
			b.U8("andx_cmd", netmsg.TypeEnum, 0xff)
			b.U8("andx_reserved", netmsg.TypeUint8, 0)
			b.U16LE("andx_offset", netmsg.TypeUint16, 0)
			b.U16LE("max_buffer", netmsg.TypeUint16, 16644)
			b.U16LE("max_mpx", netmsg.TypeUint16, 50)
			b.U16LE("vc_number", netmsg.TypeUint16, 0)
			b.U32LE("session_key", netmsg.TypeID, 0) // SMB1 sends 0 on the wire
			b.U16LE("ansi_pw_len", netmsg.TypeUint16, 24)
			b.U16LE("uni_pw_len", netmsg.TypeUint16, 0)
			b.U32LE("reserved2", netmsg.TypeUint32, 0)
			b.U32LE("capabilities", netmsg.TypeFlags, 0x000000d4)
			pw := r.Bytes(24)
			account := r.Hostname()
			body := append(append([]byte{}, pw...), account...)
			body = append(body, 0)
			body = append(body, "WORKGROUP\x00"...)
			b.U16LE("bcc", netmsg.TypeUint16, uint16(len(body)))
			b.Field("ansi_password", netmsg.TypeBytes, pw)
			b.Chars("account", account+"\x00")
			b.Chars("domain", "WORKGROUP\x00")
		} else {
			b.U8("wct", netmsg.TypeUint8, 3)
			b.U8("andx_cmd", netmsg.TypeEnum, 0xff)
			b.U8("andx_reserved", netmsg.TypeUint8, 0)
			b.U16LE("andx_offset", netmsg.TypeUint16, 0)
			b.U16LE("action", netmsg.TypeFlags, 1)
			osStr := "Windows 5.1\x00"
			lanStr := "Windows 2000 LAN Manager\x00"
			b.U16LE("bcc", netmsg.TypeUint16, uint16(len(osStr)+len(lanStr)))
			b.Chars("native_os", osStr)
			b.Chars("native_lanman", lanStr)
		}
	case cmdTreeConnect:
		if request {
			b.U8("wct", netmsg.TypeUint8, 4)
			b.U8("andx_cmd", netmsg.TypeEnum, 0xff)
			b.U8("andx_reserved", netmsg.TypeUint8, 0)
			b.U16LE("andx_offset", netmsg.TypeUint16, 0)
			b.U16LE("tc_flags", netmsg.TypeFlags, 0)
			b.U16LE("pw_len", netmsg.TypeUint16, 1)
			share := fmt.Sprintf("\\\\FILESRV\\SHARE%d\x00", r.Intn(6))
			svc := "?????\x00"
			b.U16LE("bcc", netmsg.TypeUint16, uint16(1+len(share)+len(svc)))
			b.U8("password", netmsg.TypeUint8, 0)
			b.Chars("path", share)
			b.Chars("service", svc)
		} else {
			b.U8("wct", netmsg.TypeUint8, 3)
			b.U8("andx_cmd", netmsg.TypeEnum, 0xff)
			b.U8("andx_reserved", netmsg.TypeUint8, 0)
			b.U16LE("andx_offset", netmsg.TypeUint16, 0)
			b.U16LE("optional_support", netmsg.TypeFlags, 1)
			svc := "A:\x00"
			fs := "NTFS\x00"
			b.U16LE("bcc", netmsg.TypeUint16, uint16(len(svc)+len(fs)))
			b.Chars("service", svc)
			b.Chars("native_fs", fs)
		}
	case cmdReadAndX:
		if request {
			b.U8("wct", netmsg.TypeUint8, 12)
			b.U8("andx_cmd", netmsg.TypeEnum, 0xff)
			b.U8("andx_reserved", netmsg.TypeUint8, 0)
			b.U16LE("andx_offset", netmsg.TypeUint16, 0)
			b.U16LE("fid", netmsg.TypeID, uint16(0x4000+r.Intn(64)))
			b.U32LE("offset", netmsg.TypeUint32, uint32(256*r.Intn(8)))
			b.U16LE("max_count", netmsg.TypeUint16, 256)
			b.U16LE("min_count", netmsg.TypeUint16, 256)
			b.U32LE("timeout", netmsg.TypeUint32, 0)
			b.U16LE("remaining", netmsg.TypeUint16, 0)
			b.U16LE("bcc", netmsg.TypeUint16, 0)
		} else {
			b.U8("wct", netmsg.TypeUint8, 12)
			b.U8("andx_cmd", netmsg.TypeEnum, 0xff)
			b.U8("andx_reserved", netmsg.TypeUint8, 0)
			b.U16LE("andx_offset", netmsg.TypeUint16, 0)
			b.U16LE("remaining", netmsg.TypeUint16, 0)
			b.U16LE("data_compaction", netmsg.TypeUint16, 0)
			b.U16LE("rx_reserved", netmsg.TypeUint16, 0)
			b.U16LE("data_len", netmsg.TypeUint16, uint16(len(fileBlock)))
			b.U16LE("data_offset", netmsg.TypeUint16, 59)
			b.Pad("rx_reserved2", 10)
			b.U16LE("bcc", netmsg.TypeUint16, uint16(1+len(fileBlock)))
			b.U8("padding", netmsg.TypePad, 0)
			b.Field("file_data", netmsg.TypeChars, fileBlock)
		}
	case cmdTrans2:
		if request {
			b.U8("wct", netmsg.TypeUint8, 15)
			b.U16LE("total_param_count", netmsg.TypeUint16, 2)
			b.U16LE("total_data_count", netmsg.TypeUint16, 0)
			b.U16LE("max_param_count", netmsg.TypeUint16, 0)
			b.U16LE("max_data_count", netmsg.TypeUint16, 16644)
			b.U8("max_setup", netmsg.TypeUint8, 0)
			b.U8("t2_reserved", netmsg.TypeUint8, 0)
			b.U16LE("t2_flags", netmsg.TypeFlags, 0)
			b.U32LE("timeout", netmsg.TypeUint32, 0)
			b.U16LE("reserved2", netmsg.TypeUint16, 0)
			b.U16LE("param_count", netmsg.TypeUint16, 2)
			b.U16LE("param_offset", netmsg.TypeUint16, 68)
			b.U16LE("data_count", netmsg.TypeUint16, 0)
			b.U8("setup_count", netmsg.TypeUint8, 1)
			b.U8("setup_reserved", netmsg.TypeUint8, 0)
			b.U16LE("setup0", netmsg.TypeEnum, 0x0005) // QUERY_PATH_INFO
			b.U16LE("bcc", netmsg.TypeUint16, 2)
			b.U16LE("info_level", netmsg.TypeEnum, 0x0107)
		} else {
			b.U8("wct", netmsg.TypeUint8, 10)
			b.U16LE("total_param_count", netmsg.TypeUint16, 2)
			b.U16LE("total_data_count", netmsg.TypeUint16, 40)
			b.U16LE("t2r_reserved", netmsg.TypeUint16, 0)
			b.U16LE("param_count", netmsg.TypeUint16, 2)
			b.U16LE("param_offset", netmsg.TypeUint16, 56)
			b.U16LE("param_disp", netmsg.TypeUint16, 0)
			b.U16LE("data_count", netmsg.TypeUint16, 40)
			b.U16LE("data_offset", netmsg.TypeUint16, 60)
			b.U16LE("data_disp", netmsg.TypeUint16, 0)
			b.U16LE("bcc", netmsg.TypeUint16, 44)
			b.U16LE("ea_error", netmsg.TypeUint16, 0)
			b.U16LE("padding", netmsg.TypeUint16, 0)
			// File info: four FILETIME timestamps + attributes.
			created := protogen.Filetime(now.Add(-time.Duration(r.Intn(100000)) * time.Minute))
			b.U64LE("create_time", netmsg.TypeTimestamp, created)
			b.U64LE("access_time", netmsg.TypeTimestamp, protogen.Filetime(now.Add(-time.Duration(r.Intn(1000))*time.Minute)))
			b.U64LE("write_time", netmsg.TypeTimestamp, protogen.Filetime(now.Add(-time.Duration(r.Intn(5000))*time.Minute)))
			b.U64LE("change_time", netmsg.TypeTimestamp, protogen.Filetime(now.Add(-time.Duration(r.Intn(5000))*time.Minute)))
			b.U32LE("attributes", netmsg.TypeFlags, 0x20)
			b.U32LE("ea_reserved", netmsg.TypeUint32, 0)
		}
	}
	return b
}
