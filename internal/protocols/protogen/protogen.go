// Package protogen provides shared infrastructure for the synthetic
// protocol trace generators: a deterministic message builder that
// records ground-truth fields while bytes are appended, plus value pools
// (addresses, host names, domain names) with realistic variability.
//
// The generators replace the paper's recorded pcaps (smia-2011,
// ictf2010, private AWDL/AU captures). See DESIGN.md §2 for why this
// substitution preserves the evaluated behaviour: the clustering method
// only consumes message bytes, and the generators reproduce the
// per-field value-variability classes of the originals.
package protogen

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"time"

	"protoclust/internal/netmsg"
)

// Builder accumulates one message's bytes and ground-truth fields.
type Builder struct {
	data   []byte
	fields []netmsg.Field
}

// NewBuilder returns an empty message builder.
func NewBuilder() *Builder { return &Builder{} }

// Len returns the number of bytes appended so far.
func (b *Builder) Len() int { return len(b.data) }

// Field appends raw bytes as one ground-truth field.
func (b *Builder) Field(name string, typ netmsg.FieldType, value []byte) *Builder {
	b.fields = append(b.fields, netmsg.Field{
		Name:   name,
		Offset: len(b.data),
		Length: len(value),
		Type:   typ,
	})
	b.data = append(b.data, value...)
	return b
}

// U8 appends a one-byte field.
func (b *Builder) U8(name string, typ netmsg.FieldType, v uint8) *Builder {
	return b.Field(name, typ, []byte{v})
}

// U16 appends a big-endian two-byte field.
func (b *Builder) U16(name string, typ netmsg.FieldType, v uint16) *Builder {
	var buf [2]byte
	binary.BigEndian.PutUint16(buf[:], v)
	return b.Field(name, typ, buf[:])
}

// U16LE appends a little-endian two-byte field.
func (b *Builder) U16LE(name string, typ netmsg.FieldType, v uint16) *Builder {
	var buf [2]byte
	binary.LittleEndian.PutUint16(buf[:], v)
	return b.Field(name, typ, buf[:])
}

// U32 appends a big-endian four-byte field.
func (b *Builder) U32(name string, typ netmsg.FieldType, v uint32) *Builder {
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], v)
	return b.Field(name, typ, buf[:])
}

// U32LE appends a little-endian four-byte field.
func (b *Builder) U32LE(name string, typ netmsg.FieldType, v uint32) *Builder {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	return b.Field(name, typ, buf[:])
}

// U64 appends a big-endian eight-byte field.
func (b *Builder) U64(name string, typ netmsg.FieldType, v uint64) *Builder {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], v)
	return b.Field(name, typ, buf[:])
}

// U64LE appends a little-endian eight-byte field.
func (b *Builder) U64LE(name string, typ netmsg.FieldType, v uint64) *Builder {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	return b.Field(name, typ, buf[:])
}

// Pad appends n bytes of padding (zeros).
func (b *Builder) Pad(name string, n int) *Builder {
	return b.Field(name, netmsg.TypePad, make([]byte, n))
}

// Chars appends a character-sequence field.
func (b *Builder) Chars(name string, s string) *Builder {
	return b.Field(name, netmsg.TypeChars, []byte(s))
}

// Message finalizes the builder into a netmsg.Message with the given
// metadata. The builder must not be reused afterwards.
func (b *Builder) Message(ts time.Time, src, dst string, isRequest bool) *netmsg.Message {
	return &netmsg.Message{
		Data:      b.data,
		Fields:    b.fields,
		Timestamp: ts,
		SrcAddr:   src,
		DstAddr:   dst,
		IsRequest: isRequest,
	}
}

// Rand wraps math/rand with helpers common to the generators. All
// generators are fully deterministic given a seed.
type Rand struct {
	*rand.Rand
}

// NewRand returns a deterministic Rand for the given seed.
func NewRand(seed int64) *Rand {
	return &Rand{Rand: rand.New(rand.NewSource(seed))}
}

// Bytes returns n random bytes (high-entropy content such as SMB
// signatures or timestamp fractions).
func (r *Rand) Bytes(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(r.Intn(256))
	}
	return out
}

// IPv4 returns a random address within 10.x.y.z.
func (r *Rand) IPv4() []byte {
	return []byte{10, byte(r.Intn(4)), byte(r.Intn(256)), byte(1 + r.Intn(254))}
}

// IPv4From returns a random address from the given /24-style pool,
// varying only the last octet across poolSize hosts.
func (r *Rand) IPv4From(base [3]byte, poolSize int) []byte {
	if poolSize < 1 {
		poolSize = 1
	}
	return []byte{base[0], base[1], base[2], byte(1 + r.Intn(poolSize))}
}

// MAC returns a random locally administered MAC address (as used by
// privacy-randomizing stacks such as AWDL).
func (r *Rand) MAC() []byte {
	m := r.Bytes(6)
	m[0] = (m[0] | 0x02) &^ 0x01
	return m
}

// ouiPool holds vendor prefixes for hardware MAC addresses: real NICs
// share a handful of OUIs per site, which keeps MAC values similar to
// each other — structure the clustering relies on.
var ouiPool = [][3]byte{
	{0x00, 0x16, 0x3e},
	{0x00, 0x1b, 0x63},
	{0x00, 0x1e, 0xc2},
	{0xf0, 0xde, 0xf1},
}

// HardwareMAC returns a vendor-prefixed MAC address: a random OUI from
// a small site pool followed by three random bytes.
func (r *Rand) HardwareMAC() []byte {
	oui := ouiPool[r.Intn(len(ouiPool))]
	return append([]byte{oui[0], oui[1], oui[2]}, r.Bytes(3)...)
}

// Pick returns a uniformly chosen element of choices.
func (r *Rand) Pick(choices []string) string {
	return choices[r.Intn(len(choices))]
}

// Hostname returns a plausible device host name from a fixed pool with a
// numeric suffix, e.g. "workstation-17".
func (r *Rand) Hostname() string {
	prefixes := []string{"workstation", "laptop", "printer", "server", "desktop", "iphone", "macbook", "camera"}
	return fmt.Sprintf("%s-%d", r.Pick(prefixes), r.Intn(40))
}

// Domain returns a plausible DNS domain from a bounded pool so query
// and response traffic shares names, e.g. "mail.example3.org".
func (r *Rand) Domain() string {
	hosts := []string{"www", "mail", "ns1", "ns2", "ftp", "api", "cdn", "login"}
	seconds := []string{"example", "ictf", "corp", "campus", "test"}
	tlds := []string{"com", "org", "net", "edu"}
	return fmt.Sprintf("%s.%s%d.%s", r.Pick(hosts), r.Pick(seconds), r.Intn(12), r.Pick(tlds))
}

// NetBIOSName returns an uppercase NetBIOS name of at most 15 chars.
func (r *Rand) NetBIOSName() string {
	names := []string{"WORKGROUP", "FILESRV", "PRINTSRV", "DC01", "WKS", "MSHOME", "LAB", "ADMIN"}
	n := r.Pick(names)
	if r.Intn(2) == 0 {
		n = fmt.Sprintf("%s%02d", n, r.Intn(30))
	}
	if len(n) > 15 {
		n = n[:15]
	}
	return n
}

// Epoch is the base capture time shared by all generators (2011-05-10,
// matching the smia-2011 capture period the paper drew from).
var Epoch = time.Date(2011, time.May, 10, 12, 0, 0, 0, time.UTC)

// NTPEra converts a capture time to the NTP era-0 seconds value
// (seconds since 1900-01-01).
func NTPEra(t time.Time) uint32 {
	const secsTo1970 = 2208988800
	return uint32(t.Unix() + secsTo1970)
}

// Filetime converts a capture time to a Windows FILETIME (100 ns ticks
// since 1601-01-01), used by SMB timestamps.
func Filetime(t time.Time) uint64 {
	const ticksTo1970 = 116444736000000000
	return uint64(t.UnixNano()/100) + ticksTo1970
}
