package protogen

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"protoclust/internal/netmsg"
)

func TestBuilderFieldsAndOffsets(t *testing.T) {
	b := NewBuilder()
	b.U8("a", netmsg.TypeUint8, 0x11)
	b.U16("b", netmsg.TypeUint16, 0x2233)
	b.U32("c", netmsg.TypeUint32, 0x44556677)
	b.U64("d", netmsg.TypeUint64, 0x8899aabbccddeeff)
	m := b.Message(time.Unix(1, 0), "s", "d", true)

	want := []byte{0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff}
	if !bytes.Equal(m.Data, want) {
		t.Errorf("data = %x, want %x", m.Data, want)
	}
	if err := m.ValidateFields(); err != nil {
		t.Errorf("fields do not tile: %v", err)
	}
	if len(m.Fields) != 4 {
		t.Fatalf("fields = %d, want 4", len(m.Fields))
	}
	if m.Fields[2].Offset != 3 || m.Fields[2].Length != 4 {
		t.Errorf("field c at %d+%d, want 3+4", m.Fields[2].Offset, m.Fields[2].Length)
	}
}

func TestBuilderLittleEndian(t *testing.T) {
	b := NewBuilder()
	b.U16LE("a", netmsg.TypeUint16, 0x2233)
	b.U32LE("b", netmsg.TypeUint32, 0x44556677)
	b.U64LE("c", netmsg.TypeUint64, 0x0102030405060708)
	m := b.Message(time.Unix(1, 0), "s", "d", false)
	want := []byte{0x33, 0x22, 0x77, 0x66, 0x55, 0x44, 8, 7, 6, 5, 4, 3, 2, 1}
	if !bytes.Equal(m.Data, want) {
		t.Errorf("data = %x, want %x", m.Data, want)
	}
}

func TestBuilderPadAndChars(t *testing.T) {
	b := NewBuilder()
	b.Pad("p", 3)
	b.Chars("s", "hi")
	m := b.Message(time.Unix(1, 0), "s", "d", true)
	if !bytes.Equal(m.Data, []byte{0, 0, 0, 'h', 'i'}) {
		t.Errorf("data = %x", m.Data)
	}
	if m.Fields[0].Type != netmsg.TypePad || m.Fields[1].Type != netmsg.TypeChars {
		t.Errorf("field types = %v/%v", m.Fields[0].Type, m.Fields[1].Type)
	}
	if b.Len() != 5 {
		t.Errorf("Len = %d, want 5", b.Len())
	}
}

func TestBuilderMessageMetadata(t *testing.T) {
	b := NewBuilder()
	b.U8("x", netmsg.TypeUint8, 1)
	ts := time.Unix(42, 0)
	m := b.Message(ts, "1.2.3.4:5", "6.7.8.9:10", true)
	if !m.Timestamp.Equal(ts) || m.SrcAddr != "1.2.3.4:5" || m.DstAddr != "6.7.8.9:10" || !m.IsRequest {
		t.Errorf("metadata not carried: %+v", m)
	}
}

func TestRandDeterminism(t *testing.T) {
	a := NewRand(7)
	b := NewRand(7)
	if !bytes.Equal(a.Bytes(16), b.Bytes(16)) {
		t.Error("same seed should produce same bytes")
	}
}

func TestRandBytesLength(t *testing.T) {
	r := NewRand(1)
	for _, n := range []int{0, 1, 8, 100} {
		if got := len(r.Bytes(n)); got != n {
			t.Errorf("Bytes(%d) length = %d", n, got)
		}
	}
}

func TestIPv4Shape(t *testing.T) {
	r := NewRand(2)
	for i := 0; i < 50; i++ {
		ip := r.IPv4()
		if ip[0] != 10 {
			t.Fatalf("IPv4 not in 10/8: %v", ip)
		}
		if ip[3] == 0 || ip[3] == 255 {
			t.Fatalf("host octet %d is a network/broadcast address", ip[3])
		}
	}
}

func TestIPv4From(t *testing.T) {
	r := NewRand(3)
	ip := r.IPv4From([3]byte{192, 168, 7}, 10)
	if ip[0] != 192 || ip[1] != 168 || ip[2] != 7 {
		t.Errorf("prefix not honored: %v", ip)
	}
	if ip[3] < 1 || ip[3] > 10 {
		t.Errorf("host octet %d outside pool", ip[3])
	}
	// Degenerate pool size.
	ip = r.IPv4From([3]byte{1, 2, 3}, 0)
	if ip[3] != 1 {
		t.Errorf("pool 0 should clamp to one host, got %d", ip[3])
	}
}

func TestMACShapes(t *testing.T) {
	r := NewRand(4)
	m := r.MAC()
	if len(m) != 6 {
		t.Fatalf("MAC length %d", len(m))
	}
	if m[0]&0x02 == 0 {
		t.Error("locally administered bit not set")
	}
	if m[0]&0x01 != 0 {
		t.Error("multicast bit set")
	}
	hw := r.HardwareMAC()
	if len(hw) != 6 {
		t.Fatalf("HardwareMAC length %d", len(hw))
	}
	found := false
	for _, oui := range ouiPool {
		if hw[0] == oui[0] && hw[1] == oui[1] && hw[2] == oui[2] {
			found = true
		}
	}
	if !found {
		t.Errorf("HardwareMAC %x has no pool OUI", hw)
	}
}

func TestNamePools(t *testing.T) {
	r := NewRand(5)
	for i := 0; i < 20; i++ {
		if h := r.Hostname(); h == "" {
			t.Fatal("empty hostname")
		}
		if d := r.Domain(); d == "" {
			t.Fatal("empty domain")
		}
		n := r.NetBIOSName()
		if len(n) == 0 || len(n) > 15 {
			t.Fatalf("NetBIOS name %q length out of range", n)
		}
	}
}

func TestNTPEra(t *testing.T) {
	// 1970-01-01 is 2208988800 seconds into NTP era 0.
	if got := NTPEra(time.Unix(0, 0)); got != 2208988800 {
		t.Errorf("NTPEra(unix 0) = %d", got)
	}
	if got := NTPEra(time.Unix(100, 0)); got != 2208988900 {
		t.Errorf("NTPEra(unix 100) = %d", got)
	}
}

func TestFiletime(t *testing.T) {
	// 1970-01-01 in FILETIME ticks.
	if got := Filetime(time.Unix(0, 0)); got != 116444736000000000 {
		t.Errorf("Filetime(unix 0) = %d", got)
	}
	// One second later adds 1e7 ticks of 100 ns.
	if got := Filetime(time.Unix(1, 0)); got != 116444736000000000+10000000 {
		t.Errorf("Filetime(unix 1) = %d", got)
	}
}

// Property: any builder program yields a message whose fields tile it.
func TestBuilderTilesProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		b := NewBuilder()
		for i, op := range ops {
			name := string(rune('a' + i%26))
			switch op % 5 {
			case 0:
				b.U8(name, netmsg.TypeUint8, op)
			case 1:
				b.U16(name, netmsg.TypeUint16, uint16(op))
			case 2:
				b.U32LE(name, netmsg.TypeUint32, uint32(op))
			case 3:
				b.Pad(name, int(op)%5+1)
			default:
				b.Chars(name, "x")
			}
		}
		if len(ops) == 0 {
			return true
		}
		m := b.Message(time.Unix(0, 0), "s", "d", false)
		return m.ValidateFields() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
