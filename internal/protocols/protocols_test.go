package protocols

import (
	"bytes"
	"testing"

	"protoclust/internal/netmsg"
)

func TestNames(t *testing.T) {
	names := Names()
	want := []string{"au", "awdl", "dhcp", "dns", "modbus", "nbns", "ntp", "smb"}
	if len(names) != len(want) {
		t.Fatalf("Names = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("Names[%d] = %q, want %q", i, names[i], want[i])
		}
	}
}

func TestGenerateUnknown(t *testing.T) {
	if _, err := Generate("quic", 10, 1); err == nil {
		t.Error("unknown protocol should error")
	}
}

func TestGenerateRejectsNonPositive(t *testing.T) {
	for _, name := range Names() {
		if _, err := Generate(name, 0, 1); err == nil {
			t.Errorf("%s: n=0 should error", name)
		}
	}
}

// TestAllGeneratorsProduceValidGroundTruth is the central generator
// contract: requested message count, non-empty payloads, and a
// dissection that tiles each message exactly.
func TestAllGeneratorsProduceValidGroundTruth(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			tr, err := Generate(name, 50, 7)
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			if len(tr.Messages) != 50 {
				t.Fatalf("got %d messages, want 50", len(tr.Messages))
			}
			if tr.Protocol != name {
				t.Errorf("Protocol = %q, want %q", tr.Protocol, name)
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("ground truth invalid: %v", err)
			}
			for i, m := range tr.Messages {
				if len(m.Data) == 0 {
					t.Fatalf("message %d is empty", i)
				}
				if m.SrcAddr == "" || m.DstAddr == "" {
					t.Errorf("message %d lacks endpoint metadata", i)
				}
				if m.Timestamp.IsZero() {
					t.Errorf("message %d lacks a timestamp", i)
				}
			}
		})
	}
}

func TestGeneratorsAreDeterministic(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			a, err := Generate(name, 30, 99)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Generate(name, 30, 99)
			if err != nil {
				t.Fatal(err)
			}
			for i := range a.Messages {
				if !bytes.Equal(a.Messages[i].Data, b.Messages[i].Data) {
					t.Fatalf("message %d differs between runs with same seed", i)
				}
			}
		})
	}
}

func TestGeneratorsVaryWithSeed(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			a, err := Generate(name, 10, 1)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Generate(name, 10, 2)
			if err != nil {
				t.Fatal(err)
			}
			same := true
			for i := range a.Messages {
				if !bytes.Equal(a.Messages[i].Data, b.Messages[i].Data) {
					same = false
					break
				}
			}
			if same {
				t.Error("different seeds produced identical traces")
			}
		})
	}
}

// TestTracesHaveValueVariability ensures traces are not degenerate: the
// clustering method "exploits variances in the contents of messages"
// (Section III-A), so generators must not emit near-identical payloads.
func TestTracesHaveValueVariability(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			tr, err := Generate(name, 100, 5)
			if err != nil {
				t.Fatal(err)
			}
			dd := tr.Deduplicate()
			if len(dd.Messages) < 50 {
				t.Errorf("only %d of 100 messages unique; generator too repetitive", len(dd.Messages))
			}
		})
	}
}

func TestTimestampsMonotonic(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			tr, err := Generate(name, 40, 3)
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i < len(tr.Messages); i++ {
				if tr.Messages[i].Timestamp.Before(tr.Messages[i-1].Timestamp) {
					t.Fatalf("timestamps not monotonic at message %d", i)
				}
			}
		})
	}
}

// TestFieldTypeDiversity checks each generator emits at least four
// distinct ground-truth types; clustering validation is meaningless on
// single-type traces.
func TestFieldTypeDiversity(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			tr, err := Generate(name, 60, 11)
			if err != nil {
				t.Fatal(err)
			}
			types := make(map[netmsg.FieldType]bool)
			for _, m := range tr.Messages {
				for _, f := range m.Fields {
					types[f.Type] = true
				}
			}
			if len(types) < 4 {
				t.Errorf("only %d distinct field types: %v", len(types), types)
			}
		})
	}
}

func TestNTPFixedStructure(t *testing.T) {
	tr, err := Generate("ntp", 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range tr.Messages {
		if len(m.Data) != 48 {
			t.Fatalf("NTP message %d has %d bytes, want 48", i, len(m.Data))
		}
		if len(m.Fields) != 11 {
			t.Fatalf("NTP message %d has %d fields, want 11", i, len(m.Fields))
		}
	}
}

func TestDNSQueryResponsePairsShareID(t *testing.T) {
	tr, err := Generate("dns", 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	pairs := 0
	for i := 0; i+1 < len(tr.Messages); i += 2 {
		q, r := tr.Messages[i], tr.Messages[i+1]
		if !q.IsRequest || r.IsRequest {
			continue
		}
		if bytes.Equal(q.Data[0:2], r.Data[0:2]) {
			pairs++
		}
	}
	if pairs == 0 {
		t.Error("no query/response pair shares a transaction ID")
	}
}

func TestSMBSignatureIsHighEntropy(t *testing.T) {
	tr, err := Generate("smb", 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	sigs := make(map[string]bool)
	for _, m := range tr.Messages {
		for _, f := range m.Fields {
			if f.Name == "signature" {
				sigs[string(m.Data[f.Offset:f.End()])] = true
			}
		}
	}
	if len(sigs) < 35 {
		t.Errorf("SMB signatures not random enough: %d unique of 40", len(sigs))
	}
}

func TestAWDLHasTLVStructure(t *testing.T) {
	tr, err := Generate("awdl", 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range tr.Messages {
		// Every AWDL frame starts with category 0x7f and the Apple OUI.
		if m.Data[0] != 0x7f {
			t.Fatalf("AWDL frame does not start with category 0x7f: %x", m.Data[0])
		}
		if !bytes.Equal(m.Data[1:4], []byte{0x00, 0x17, 0xf2}) {
			t.Fatalf("AWDL frame lacks Apple OUI: %x", m.Data[1:4])
		}
	}
}

func TestAUMeasurementRuns(t *testing.T) {
	tr, err := Generate("au", DefaultAUMessages(), 1)
	if err != nil {
		t.Fatal(err)
	}
	var withMeasurements int
	for _, m := range tr.Messages {
		count := 0
		for _, f := range m.Fields {
			if len(f.Name) > 11 && f.Name[:11] == "measurement" {
				count++
			}
		}
		if count == 64 {
			withMeasurements++
		}
	}
	if withMeasurements == 0 {
		t.Error("no AU message carries a 64-value measurement run")
	}
}

// DefaultAUMessages re-exports the AU trace size for tests.
func DefaultAUMessages() int { return 123 }

func TestPaperTraces(t *testing.T) {
	specs := PaperTraces()
	if len(specs) != 13 {
		t.Fatalf("PaperTraces returned %d specs, want 13", len(specs))
	}
	if specs[0].String() != "dhcp-1000" {
		t.Errorf("first spec = %s, want dhcp-1000", specs[0])
	}
	for _, s := range specs {
		tr, err := Generate(s.Protocol, 5, 1)
		if err != nil {
			t.Errorf("spec %s does not generate: %v", s, err)
			continue
		}
		if tr.Protocol != s.Protocol {
			t.Errorf("spec %s: protocol mismatch", s)
		}
	}
}
