// Package modbus generates synthetic Modbus/TCP traces with
// ground-truth dissection.
//
// Modbus is not part of the paper's evaluation set; it is included as
// an extension protocol (industrial control traffic, the ZOE use case
// cited in the paper's introduction) and as the reference example for
// adding generators (CONTRIBUTING.md). Its MBAP header carries a true
// length field and sequential transaction identifiers — ideal material
// for the semantics extension's length/counter deductions.
package modbus

import (
	"fmt"
	"time"

	"protoclust/internal/netmsg"
	"protoclust/internal/protocols/protogen"
)

// Port is the well-known Modbus/TCP port.
const Port = 502

// Modbus function codes used by the generator.
const (
	fnReadHolding  = 0x03
	fnWriteSingle  = 0x06
	fnReadHoldErr  = 0x83
	exceptionIllDA = 0x02
)

// Generate produces a trace of n Modbus/TCP ADUs as request/response
// pairs between a SCADA master and a handful of PLCs, deterministically
// from seed.
func Generate(n int, seed int64) (*netmsg.Trace, error) {
	if n <= 0 {
		return nil, fmt.Errorf("modbus: message count must be positive, got %d", n)
	}
	r := protogen.NewRand(seed)
	tr := &netmsg.Trace{Protocol: "modbus"}

	master := "10.5.0.10:49152"
	now := protogen.Epoch
	txID := uint16(r.Intn(256))
	for len(tr.Messages) < n {
		now = now.Add(time.Duration(50+r.Intn(400)) * time.Millisecond)
		txID++
		unit := byte(1 + r.Intn(4))
		plc := fmt.Sprintf("10.5.0.%d:%d", 20+int(unit), Port)
		register := uint16(100 * (1 + r.Intn(6)))
		count := uint16(1 + r.Intn(8))

		switch r.Intn(10) {
		case 0: // write single register + echo response
			value := uint16(r.Intn(0x10000))
			req := buildWrite(txID, unit, register, value)
			tr.Messages = append(tr.Messages, req.Message(now, master, plc, true))
			if len(tr.Messages) >= n {
				break
			}
			resp := buildWrite(txID, unit, register, value) // echo
			tr.Messages = append(tr.Messages,
				resp.Message(now.Add(5*time.Millisecond), plc, master, false))
		case 1: // exception response
			req := buildReadRequest(txID, unit, 0xFFF0, count)
			tr.Messages = append(tr.Messages, req.Message(now, master, plc, true))
			if len(tr.Messages) >= n {
				break
			}
			resp := buildException(txID, unit)
			tr.Messages = append(tr.Messages,
				resp.Message(now.Add(5*time.Millisecond), plc, master, false))
		default: // read holding registers
			req := buildReadRequest(txID, unit, register, count)
			tr.Messages = append(tr.Messages, req.Message(now, master, plc, true))
			if len(tr.Messages) >= n {
				break
			}
			resp := buildReadResponse(r, txID, unit, count)
			tr.Messages = append(tr.Messages,
				resp.Message(now.Add(5*time.Millisecond), plc, master, false))
		}
	}
	if len(tr.Messages) > n {
		tr.Messages = tr.Messages[:n]
	}
	return tr, nil
}

// mbap appends the MBAP header; pduLen is the PDU byte count following
// the unit identifier.
func mbap(b *protogen.Builder, txID uint16, unit byte, pduLen int) {
	b.U16("transaction_id", netmsg.TypeID, txID)
	b.U16("protocol_id", netmsg.TypeUint16, 0)
	b.U16("length", netmsg.TypeUint16, uint16(1+pduLen)) // unit id + PDU
	b.U8("unit_id", netmsg.TypeEnum, unit)
}

func buildReadRequest(txID uint16, unit byte, register, count uint16) *protogen.Builder {
	b := protogen.NewBuilder()
	mbap(b, txID, unit, 5)
	b.U8("function", netmsg.TypeEnum, fnReadHolding)
	b.U16("register", netmsg.TypeUint16, register)
	b.U16("count", netmsg.TypeUint16, count)
	return b
}

func buildReadResponse(r *protogen.Rand, txID uint16, unit byte, count uint16) *protogen.Builder {
	b := protogen.NewBuilder()
	mbap(b, txID, unit, 2+int(count)*2)
	b.U8("function", netmsg.TypeEnum, fnReadHolding)
	b.U8("byte_count", netmsg.TypeUint8, byte(count*2))
	for i := uint16(0); i < count; i++ {
		// Sensor-style readings: a stable base with jitter.
		b.U16(fmt.Sprintf("reg_%02d", i), netmsg.TypeUint16, uint16(4000+r.Intn(64)))
	}
	return b
}

func buildWrite(txID uint16, unit byte, register, value uint16) *protogen.Builder {
	b := protogen.NewBuilder()
	mbap(b, txID, unit, 5)
	b.U8("function", netmsg.TypeEnum, fnWriteSingle)
	b.U16("register", netmsg.TypeUint16, register)
	b.U16("value", netmsg.TypeUint16, value)
	return b
}

func buildException(txID uint16, unit byte) *protogen.Builder {
	b := protogen.NewBuilder()
	mbap(b, txID, unit, 2)
	b.U8("function", netmsg.TypeEnum, fnReadHoldErr)
	b.U8("exception", netmsg.TypeEnum, exceptionIllDA)
	return b
}
