package modbus

import (
	"encoding/binary"
	"testing"
)

func TestMBAPLayout(t *testing.T) {
	tr, err := Generate(40, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Messages) != 40 {
		t.Fatalf("messages = %d", len(tr.Messages))
	}
	for i, m := range tr.Messages {
		if len(m.Data) < 8 {
			t.Fatalf("message %d shorter than MBAP+function", i)
		}
		if binary.BigEndian.Uint16(m.Data[2:4]) != 0 {
			t.Errorf("message %d: protocol id != 0", i)
		}
		// The MBAP length field must equal the remaining bytes after it.
		l := int(binary.BigEndian.Uint16(m.Data[4:6]))
		if l != len(m.Data)-6 {
			t.Errorf("message %d: length field %d, want %d", i, l, len(m.Data)-6)
		}
	}
}

func TestTransactionsPairAndIncrement(t *testing.T) {
	tr, err := Generate(40, 2)
	if err != nil {
		t.Fatal(err)
	}
	var prev uint16
	first := true
	for i := 0; i+1 < len(tr.Messages); i += 2 {
		req, resp := tr.Messages[i], tr.Messages[i+1]
		if !req.IsRequest || resp.IsRequest {
			t.Fatalf("pair %d direction wrong", i/2)
		}
		reqID := binary.BigEndian.Uint16(req.Data[0:2])
		respID := binary.BigEndian.Uint16(resp.Data[0:2])
		if reqID != respID {
			t.Errorf("pair %d: transaction ids differ (%d vs %d)", i/2, reqID, respID)
		}
		if !first && reqID <= prev {
			t.Errorf("transaction id %d not increasing (prev %d)", reqID, prev)
		}
		prev = reqID
		first = false
	}
}

func TestGroundTruthTiles(t *testing.T) {
	tr, err := Generate(60, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("ground truth invalid: %v", err)
	}
}

func TestFunctionMix(t *testing.T) {
	tr, err := Generate(200, 4)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[byte]int{}
	for _, m := range tr.Messages {
		counts[m.Data[7]]++
	}
	if counts[fnReadHolding] == 0 {
		t.Error("no read transactions")
	}
	if counts[fnWriteSingle] == 0 {
		t.Error("no write transactions")
	}
	if counts[fnReadHoldErr] == 0 {
		t.Error("no exception responses")
	}
}
