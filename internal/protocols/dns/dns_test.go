package dns

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func TestEncodeName(t *testing.T) {
	got := EncodeName("www.example.com")
	want := []byte("\x03www\x07example\x03com\x00")
	if !bytes.Equal(got, want) {
		t.Errorf("EncodeName = %x, want %x", got, want)
	}
}

func TestEncodeNameSingleLabel(t *testing.T) {
	got := EncodeName("localhost")
	want := []byte("\x09localhost\x00")
	if !bytes.Equal(got, want) {
		t.Errorf("EncodeName = %x, want %x", got, want)
	}
}

func TestGenerateHeaderLayout(t *testing.T) {
	tr, err := Generate(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range tr.Messages {
		if len(m.Data) < 12 {
			t.Fatalf("message %d shorter than a DNS header", i)
		}
		flags := binary.BigEndian.Uint16(m.Data[2:4])
		isResponse := flags&0x8000 != 0
		if isResponse == m.IsRequest {
			t.Errorf("message %d: QR bit %v contradicts IsRequest %v", i, isResponse, m.IsRequest)
		}
		qd := binary.BigEndian.Uint16(m.Data[4:6])
		if qd != 1 {
			t.Errorf("message %d: qdcount = %d, want 1", i, qd)
		}
	}
}

func TestResponsesCarryAnswers(t *testing.T) {
	tr, err := Generate(40, 2)
	if err != nil {
		t.Fatal(err)
	}
	responses := 0
	for _, m := range tr.Messages {
		if m.IsRequest {
			continue
		}
		responses++
		an := binary.BigEndian.Uint16(m.Data[6:8])
		if an == 0 {
			t.Error("response without answers")
		}
		// Each answer's rdata must be a ground-truth ipv4addr field.
		hasRdata := false
		for _, f := range m.Fields {
			if f.Type == "ipv4addr" {
				hasRdata = true
			}
		}
		if !hasRdata {
			t.Error("response without ipv4 rdata field")
		}
	}
	if responses == 0 {
		t.Fatal("no responses generated")
	}
}

func TestQueryNamesAreEncoded(t *testing.T) {
	tr, err := Generate(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	m := tr.Messages[0]
	for _, f := range m.Fields {
		if f.Name != "qname" {
			continue
		}
		name := m.Data[f.Offset:f.End()]
		if name[len(name)-1] != 0 {
			t.Error("qname not zero-terminated")
		}
		if int(name[0]) == 0 || int(name[0]) > 63 {
			t.Errorf("first label length %d out of range", name[0])
		}
		return
	}
	t.Fatal("no qname field found")
}
