// Package dns generates synthetic Domain Name System traces (RFC 1035
// wire format) with ground-truth dissection.
//
// DNS contributes variable-length fields (label-encoded names), embedded
// char sequences, shared transaction IDs across query/response pairs,
// and enum-like fixed fields — the variability mix of the paper's
// ictf2010-derived trace.
package dns

import (
	"fmt"
	"strings"
	"time"

	"protoclust/internal/netmsg"
	"protoclust/internal/protocols/protogen"
)

// Port is the well-known DNS UDP port.
const Port = 53

// Generate produces a trace of n DNS messages as query/response pairs,
// deterministically from seed.
func Generate(n int, seed int64) (*netmsg.Trace, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dns: message count must be positive, got %d", n)
	}
	r := protogen.NewRand(seed)
	tr := &netmsg.Trace{Protocol: "dns"}

	now := protogen.Epoch
	for len(tr.Messages) < n {
		now = now.Add(time.Duration(50+r.Intn(900)) * time.Millisecond)
		id := uint16(r.Intn(0x10000))
		name := r.Domain()
		qtype := pickQType(r)
		client := fmt.Sprintf("10.1.0.%d:%d", 1+r.Intn(60), 1024+r.Intn(60000))
		server := fmt.Sprintf("10.1.0.%d:%d", 200+r.Intn(4), Port)

		q := buildQuery(r, id, name, qtype)
		tr.Messages = append(tr.Messages, q.Message(now, client, server, true))
		if len(tr.Messages) >= n {
			break
		}
		resp := buildResponse(r, id, name, qtype)
		tr.Messages = append(tr.Messages,
			resp.Message(now.Add(time.Duration(1+r.Intn(40))*time.Millisecond), server, client, false))
	}
	return tr, nil
}

func pickQType(r *protogen.Rand) uint16 {
	// A, AAAA, MX, NS with A dominating, as in real resolver traffic.
	switch r.Intn(10) {
	case 0:
		return 28 // AAAA
	case 1:
		return 15 // MX
	case 2:
		return 2 // NS
	default:
		return 1 // A
	}
}

func buildHeader(b *protogen.Builder, id uint16, response bool, ancount uint16) {
	b.U16("id", netmsg.TypeID, id)
	flags := uint16(0x0100) // RD
	if response {
		flags = 0x8180 // QR|RD|RA
	}
	b.U16("flags", netmsg.TypeFlags, flags)
	b.U16("qdcount", netmsg.TypeUint16, 1)
	b.U16("ancount", netmsg.TypeUint16, ancount)
	b.U16("nscount", netmsg.TypeUint16, 0)
	b.U16("arcount", netmsg.TypeUint16, 0)
}

// EncodeName converts "www.example.com" into DNS label encoding
// (length-prefixed labels, zero-terminated).
func EncodeName(name string) []byte {
	var out []byte
	for _, label := range strings.Split(name, ".") {
		out = append(out, byte(len(label)))
		out = append(out, label...)
	}
	return append(out, 0)
}

func buildQuery(r *protogen.Rand, id uint16, name string, qtype uint16) *protogen.Builder {
	b := protogen.NewBuilder()
	buildHeader(b, id, false, 0)
	b.Field("qname", netmsg.TypeChars, EncodeName(name))
	b.U16("qtype", netmsg.TypeEnum, qtype)
	b.U16("qclass", netmsg.TypeEnum, 1)
	_ = r
	return b
}

func buildResponse(r *protogen.Rand, id uint16, name string, qtype uint16) *protogen.Builder {
	b := protogen.NewBuilder()
	answers := 1 + r.Intn(2)
	buildHeader(b, id, true, uint16(answers))
	b.Field("qname", netmsg.TypeChars, EncodeName(name))
	b.U16("qtype", netmsg.TypeEnum, qtype)
	b.U16("qclass", netmsg.TypeEnum, 1)
	for a := 0; a < answers; a++ {
		prefix := fmt.Sprintf("an%d_", a)
		b.U16(prefix+"name", netmsg.TypeUint16, 0xc00c) // compression pointer
		b.U16(prefix+"type", netmsg.TypeEnum, 1)        // A record answers
		b.U16(prefix+"class", netmsg.TypeEnum, 1)
		b.U32(prefix+"ttl", netmsg.TypeUint32, uint32(60*(1+r.Intn(60))))
		b.U16(prefix+"rdlength", netmsg.TypeUint16, 4)
		b.Field(prefix+"rdata", netmsg.TypeIPv4, r.IPv4())
	}
	return b
}
