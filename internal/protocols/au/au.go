// Package au generates synthetic Apple Auto Unlock traces with
// ground-truth dissection.
//
// Auto Unlock is the paper's proprietary distance-bounding protocol:
// messages carry long runs of 32-bit measurement integers that "look
// static in some instances and random in others" (Section IV-C), which
// is exactly the property that defeats value-based clustering. Only 123
// messages were available to the authors; Generate defaults to the same
// size.
package au

import (
	"fmt"
	"time"

	"protoclust/internal/netmsg"
	"protoclust/internal/protocols/protogen"
)

// DefaultMessages matches the paper's AU trace size.
const DefaultMessages = 123

// AU message types used by the generator.
const (
	msgRangingRequest  = 1
	msgRangingResponse = 2
	msgResult          = 3
)

// calTable derives a 512-byte pseudo-constant calibration table from a
// device identifier (the same device always sends the same table). The
// table tiles a 32-byte per-antenna calibration record, as radio
// calibration data typically repeats one record layout per chain.
func calTable(devID uint64) []byte {
	record := make([]byte, 32)
	state := devID
	for i := range record {
		state = state*6364136223846793005 + 1442695040888963407
		record[i] = byte(state >> 56)
	}
	out := make([]byte, 512)
	for i := range out {
		out[i] = record[i%len(record)]
	}
	return out
}

// Generate produces a trace of n Auto Unlock messages, deterministically
// from seed.
func Generate(n int, seed int64) (*netmsg.Trace, error) {
	if n <= 0 {
		return nil, fmt.Errorf("au: message count must be positive, got %d", n)
	}
	r := protogen.NewRand(seed)
	tr := &netmsg.Trace{Protocol: "au"}

	watch := uint64(r.Uint64())
	mac := uint64(r.Uint64())
	now := protogen.Epoch
	seq := uint32(1)
	for i := 0; i < n; i++ {
		now = now.Add(time.Duration(20+r.Intn(200)) * time.Millisecond)
		seq++
		var msgType byte
		switch i % 3 {
		case 0:
			msgType = msgRangingRequest
		case 1:
			msgType = msgRangingResponse
		default:
			msgType = msgResult
		}

		b := protogen.NewBuilder()
		b.U16("magic", netmsg.TypeBytes, 0xa175)
		b.U8("version", netmsg.TypeEnum, 2)
		b.U8("msg_type", netmsg.TypeEnum, msgType)
		b.U32("sequence", netmsg.TypeUint32, seq)
		devID := watch
		if msgType == msgRangingResponse {
			devID = mac
		}
		b.U64("device_id", netmsg.TypeID, devID)

		switch msgType {
		case msgRangingRequest:
			b.U8("channel", netmsg.TypeUint8, byte(36+4*r.Intn(4)))
			b.U8("slot_count", netmsg.TypeUint8, 16)
			b.U16("interval", netmsg.TypeUint16, uint16(100+10*r.Intn(5)))
			b.Field("nonce", netmsg.TypeBytes, r.Bytes(16))
		case msgRangingResponse, msgResult:
			// The measurement run: 64 32-bit values. Distance-bounding
			// time-of-flight readings: near-constant small values when
			// the devices are stationary, jumping to noisy large values
			// on multipath — static-looking in some messages, random in
			// others (Section IV-C).
			stationary := r.Intn(2) == 0
			base := uint32(1200 + r.Intn(64))
			for m := 0; m < 64; m++ {
				name := fmt.Sprintf("measurement_%02d", m)
				var v uint32
				if stationary {
					v = base + uint32(r.Intn(4))
				} else {
					v = uint32(r.Uint64()) & 0x0fffffff
				}
				b.U32(name, netmsg.TypeUint32, v)
			}
			b.U32("rssi_avg", netmsg.TypeUint32, uint32(0xffffffc0)+uint32(r.Intn(30)))
			if msgType == msgResult {
				// Result messages append the radio calibration table the
				// devices exchanged during pairing: a long, per-device
				// constant blob that makes AU messages large.
				b.Field("cal_table", netmsg.TypeBytes, calTable(watch))
			}
		}
		b.U32("crc", netmsg.TypeChecksum, uint32(r.Uint64()))

		watchAddr := "watch"
		macAddr := "macbook"
		src, dst := watchAddr, macAddr
		isReq := msgType == msgRangingRequest
		if msgType == msgRangingResponse {
			src, dst = macAddr, watchAddr
		}
		tr.Messages = append(tr.Messages, b.Message(now, src, dst, isReq))
	}
	return tr, nil
}
