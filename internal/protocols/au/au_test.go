package au

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func TestHeaderLayout(t *testing.T) {
	tr, err := Generate(DefaultMessages, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Messages) != DefaultMessages {
		t.Fatalf("messages = %d, want %d", len(tr.Messages), DefaultMessages)
	}
	for i, m := range tr.Messages {
		if binary.BigEndian.Uint16(m.Data[0:2]) != 0xa175 {
			t.Fatalf("message %d: bad magic %x", i, m.Data[0:2])
		}
		if m.Data[2] != 2 {
			t.Errorf("message %d: version %d", i, m.Data[2])
		}
		mt := m.Data[3]
		if mt < msgRangingRequest || mt > msgResult {
			t.Errorf("message %d: unknown type %d", i, mt)
		}
	}
}

func TestSequenceIncreases(t *testing.T) {
	tr, err := Generate(30, 2)
	if err != nil {
		t.Fatal(err)
	}
	prev := uint32(0)
	for i, m := range tr.Messages {
		seq := binary.BigEndian.Uint32(m.Data[4:8])
		if seq <= prev {
			t.Fatalf("message %d: sequence %d not increasing (prev %d)", i, seq, prev)
		}
		prev = seq
	}
}

func TestMeasurementPolarization(t *testing.T) {
	tr, err := Generate(DefaultMessages, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Section IV-C: measurement runs look static in some messages and
	// random in others. Verify both populations exist.
	var stationary, noisy int
	for _, m := range tr.Messages {
		var vals []uint32
		for _, f := range m.Fields {
			if len(f.Name) >= 11 && f.Name[:11] == "measurement" {
				vals = append(vals, binary.BigEndian.Uint32(m.Data[f.Offset:f.End()]))
			}
		}
		if len(vals) == 0 {
			continue
		}
		min, max := vals[0], vals[0]
		for _, v := range vals {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		if max-min < 16 {
			stationary++
		} else {
			noisy++
		}
	}
	if stationary == 0 || noisy == 0 {
		t.Errorf("measurement polarization missing: stationary=%d noisy=%d", stationary, noisy)
	}
}

func TestCalTableIsPerDeviceConstantAndPeriodic(t *testing.T) {
	a := calTable(12345)
	b := calTable(12345)
	c := calTable(67890)
	if !bytes.Equal(a, b) {
		t.Error("same device must produce the same table")
	}
	if bytes.Equal(a, c) {
		t.Error("different devices should differ")
	}
	if len(a) != 512 {
		t.Fatalf("table length %d, want 512", len(a))
	}
	// 32-byte record periodicity.
	for i := 32; i < len(a); i++ {
		if a[i] != a[i%32] {
			t.Fatalf("table not periodic at %d", i)
		}
	}
}

func TestResultMessagesAreLong(t *testing.T) {
	// The long result messages are what breaks Netzob's alignment budget
	// on the AU trace (Table II "fails").
	tr, err := Generate(30, 4)
	if err != nil {
		t.Fatal(err)
	}
	maxLen := 0
	for _, m := range tr.Messages {
		if len(m.Data) > maxLen {
			maxLen = len(m.Data)
		}
	}
	if maxLen < 700 {
		t.Errorf("longest AU message = %d bytes, want ≥ 700", maxLen)
	}
}
