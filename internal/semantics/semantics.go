// Package semantics implements the paper's first future-work direction
// (Section V): combining pseudo data type clustering with the deduction
// of intra- and inter-message semantics in the style of FieldHunter.
//
// Where FieldHunter tests fixed byte offsets, this package tests whole
// *clusters*: every segment of a pseudo data type is interpreted
// together, so the deduction also works for variable-position fields —
// the case where offset-based rules break down. Supported deductions:
//
//   - length fields (cluster values correlate with message lengths),
//   - message counters (values increase over capture time),
//   - capture-time timestamps (values correlate with packet timestamps),
//   - constants/magics (a single value across the trace),
//   - enumerations (few distinct values, many occurrences),
//   - host identifiers (values in bijection with source endpoints),
//   - char sequences (printable content).
package semantics

import (
	"math"
	"sort"

	"protoclust/internal/core"
	"protoclust/internal/detmap"
	"protoclust/internal/netmsg"
)

// Label is a deduced cluster semantic.
type Label string

// Deduced semantics, ordered roughly by specificity.
const (
	LabelConstant  Label = "constant"
	LabelEnum      Label = "enumeration"
	LabelLength    Label = "length-field"
	LabelCounter   Label = "counter"
	LabelTimestamp Label = "timestamp"
	LabelHostID    Label = "host-id"
	LabelChars     Label = "char-sequence"
	// LabelRandom marks checksum/signature/nonce-like content: fixed
	// width, every occurrence distinct, near-uniform byte distribution.
	// For fuzzing this means "recompute, don't mutate".
	LabelRandom  Label = "checksum-or-random"
	LabelUnknown Label = "unknown"
)

// Thresholds of the deduction rules.
const (
	// minCorrelation is the Pearson threshold for length and timestamp
	// deductions.
	minCorrelation = 0.8
	// maxEnumValues caps the distinct-value count of an enumeration.
	maxEnumValues = 12
	// minEnumOccurrencesPerValue requires enum values to recur.
	minEnumOccurrencesPerValue = 4
	// minPrintableShare classifies char sequences (zeros tolerated).
	minPrintableShare = 0.9
	// minStrictPrintableShare is the floor on genuinely printable bytes
	// (excluding zeros) for the char-sequence rule.
	minStrictPrintableShare = 0.6
	// minMonotoneShare is the fraction of in-order consecutive pairs for
	// a counter.
	minMonotoneShare = 0.95
	// maxIntWidth bounds integer interpretation of segment values.
	maxIntWidth = 8
	// minRandomEntropy is the per-byte entropy floor (bits, of 8) for
	// the checksum-or-random rule.
	minRandomEntropy = 6.5
)

// Deduction is the semantic verdict for one cluster.
type Deduction struct {
	// ClusterID references the analyzed pseudo data type.
	ClusterID int
	// Label is the deduced semantic.
	Label Label
	// Confidence is a rule-specific score in (0, 1]; higher is stronger
	// evidence (correlation coefficient, monotone share, ...).
	Confidence float64
	// Detail carries rule-specific context (e.g. the correlation value
	// or the enum cardinality).
	Detail string
}

// DeduceAll labels every cluster of a pipeline result.
func DeduceAll(res *core.Result) []Deduction {
	out := make([]Deduction, 0, len(res.Clusters))
	for i := range res.Clusters {
		out = append(out, Deduce(&res.Clusters[i]))
	}
	return out
}

// Deduce labels one cluster by testing the rules in specificity order.
func Deduce(c *core.Cluster) Deduction {
	d := Deduction{ClusterID: c.ID, Label: LabelUnknown}
	if len(c.Segments) == 0 {
		return d
	}

	if label, conf, detail, ok := constantRule(c); ok {
		return Deduction{ClusterID: c.ID, Label: label, Confidence: conf, Detail: detail}
	}
	if label, conf, detail, ok := lengthRule(c); ok {
		return Deduction{ClusterID: c.ID, Label: label, Confidence: conf, Detail: detail}
	}
	if label, conf, detail, ok := timestampRule(c); ok {
		return Deduction{ClusterID: c.ID, Label: label, Confidence: conf, Detail: detail}
	}
	if label, conf, detail, ok := counterRule(c); ok {
		return Deduction{ClusterID: c.ID, Label: label, Confidence: conf, Detail: detail}
	}
	if label, conf, detail, ok := hostIDRule(c); ok {
		return Deduction{ClusterID: c.ID, Label: label, Confidence: conf, Detail: detail}
	}
	if label, conf, detail, ok := charsRule(c); ok {
		return Deduction{ClusterID: c.ID, Label: label, Confidence: conf, Detail: detail}
	}
	if label, conf, detail, ok := enumRule(c); ok {
		return Deduction{ClusterID: c.ID, Label: label, Confidence: conf, Detail: detail}
	}
	if label, conf, detail, ok := randomRule(c); ok {
		return Deduction{ClusterID: c.ID, Label: label, Confidence: conf, Detail: detail}
	}
	return d
}

// segValue interprets a segment as a big-endian unsigned integer.
func segValue(s netmsg.Segment) (float64, bool) {
	b := s.Bytes()
	if len(b) > maxIntWidth {
		return 0, false
	}
	var v uint64
	for _, x := range b {
		v = v<<8 | uint64(x)
	}
	return float64(v), true
}

func constantRule(c *core.Cluster) (Label, float64, string, bool) {
	first := c.Segments[0].Bytes()
	for _, s := range c.Segments[1:] {
		if string(s.Bytes()) != string(first) {
			return "", 0, "", false
		}
	}
	return LabelConstant, 1, "single value across the trace", true
}

func lengthRule(c *core.Cluster) (Label, float64, string, bool) {
	var xs, ys []float64
	for _, s := range c.Segments {
		v, ok := segValue(s)
		if !ok {
			return "", 0, "", false
		}
		xs = append(xs, v)
		ys = append(ys, float64(len(s.Msg.Data)))
	}
	if len(xs) < 8 || distinct(xs) < 3 || distinct(ys) < 3 {
		return "", 0, "", false
	}
	r := pearson(xs, ys)
	if r < minCorrelation {
		return "", 0, "", false
	}
	return LabelLength, r, "value correlates with message length", true
}

func timestampRule(c *core.Cluster) (Label, float64, string, bool) {
	var xs, ys []float64
	for _, s := range c.Segments {
		// Absent capture times surface either as Go's zero time or as
		// epoch zero (traces without IP encapsulation, e.g. AWDL/AU
		// dumps re-stamped by tooling). Neither is a real capture
		// clock, so a column of them must not correlate into a
		// timestamp label.
		if ts := s.Msg.Timestamp; ts.IsZero() || ts.Unix() <= 0 {
			return "", 0, "", false
		}
		v, ok := segValue(s)
		if !ok {
			return "", 0, "", false
		}
		xs = append(xs, v)
		ys = append(ys, float64(s.Msg.Timestamp.UnixNano()))
	}
	if len(xs) < 8 || distinct(xs) < len(xs)/2 {
		return "", 0, "", false
	}
	r := pearson(xs, ys)
	if r < minCorrelation {
		return "", 0, "", false
	}
	return LabelTimestamp, r, "value correlates with capture time", true
}

func counterRule(c *core.Cluster) (Label, float64, string, bool) {
	// Order segments by capture time and test monotonicity per source.
	bySrc := make(map[string][]netmsg.Segment)
	for _, s := range c.Segments {
		bySrc[s.Msg.SrcAddr] = append(bySrc[s.Msg.SrcAddr], s)
	}
	inOrder, strict, pairs := 0, 0, 0
	// Sorted source order: the counts are order-insensitive today, but
	// the deduction feeds the report and must stay bit-stable if the
	// accumulation ever grows order-sensitive terms.
	for _, src := range detmap.SortedKeys(bySrc) {
		segs := bySrc[src]
		sort.Slice(segs, func(i, j int) bool {
			return segs[i].Msg.Timestamp.Before(segs[j].Msg.Timestamp)
		})
		var prev float64
		first := true
		for _, s := range segs {
			v, ok := segValue(s)
			if !ok {
				return "", 0, "", false
			}
			if !first {
				pairs++
				if v >= prev {
					inOrder++
				}
				if v > prev {
					strict++
				}
			}
			prev = v
			first = false
		}
	}
	if pairs < 8 {
		return "", 0, "", false
	}
	share := float64(inOrder) / float64(pairs)
	if share < minMonotoneShare {
		return "", 0, "", false
	}
	// A counter must actually advance; per-source constants (e.g. host
	// identifiers) are monotone only vacuously.
	if float64(strict) < 0.5*float64(pairs) {
		return "", 0, "", false
	}
	// Counters must actually advance.
	var vals []float64
	for _, s := range c.Segments {
		if v, ok := segValue(s); ok {
			vals = append(vals, v)
		}
	}
	if distinct(vals) < 4 {
		return "", 0, "", false
	}
	return LabelCounter, share, "monotone per source over capture time", true
}

func hostIDRule(c *core.Cluster) (Label, float64, string, bool) {
	hostVal := make(map[string]string)
	valHost := make(map[string]string)
	for _, s := range c.Segments {
		host := s.Msg.SrcAddr
		if host == "" {
			return "", 0, "", false
		}
		v := string(s.Bytes())
		if prev, ok := hostVal[host]; ok && prev != v {
			return "", 0, "", false
		}
		if prev, ok := valHost[v]; ok && prev != host {
			return "", 0, "", false
		}
		hostVal[host] = v
		valHost[v] = host
	}
	if len(hostVal) < 3 {
		return "", 0, "", false
	}
	return LabelHostID, 1, "bijective with source endpoint", true
}

func charsRule(c *core.Cluster) (Label, float64, string, bool) {
	// Zero bytes are tolerated (C-string terminators and padding) but do
	// not count as evidence: otherwise small integers like 0x0064 look
	// perfectly "printable".
	printable, strict, total := 0, 0, 0
	for _, s := range c.Segments {
		for _, b := range s.Bytes() {
			total++
			if b >= 0x20 && b <= 0x7e {
				printable++
				strict++
			} else if b == 0 {
				printable++
			}
		}
	}
	if total == 0 {
		return "", 0, "", false
	}
	share := float64(printable) / float64(total)
	if share < minPrintableShare || float64(strict)/float64(total) < minStrictPrintableShare {
		return "", 0, "", false
	}
	return LabelChars, share, "printable content", true
}

func enumRule(c *core.Cluster) (Label, float64, string, bool) {
	counts := make(map[string]int)
	for _, s := range c.Segments {
		counts[string(s.Bytes())]++
	}
	if len(counts) < 2 || len(counts) > maxEnumValues {
		return "", 0, "", false
	}
	for _, v := range detmap.SortedKeys(counts) {
		if counts[v] < minEnumOccurrencesPerValue {
			return "", 0, "", false
		}
	}
	conf := 1 - float64(len(counts))/float64(maxEnumValues+1)
	return LabelEnum, conf, "few recurring values", true
}

// randomRule detects checksum/signature/nonce content: constant width,
// all-distinct values, and near-uniform byte usage.
func randomRule(c *core.Cluster) (Label, float64, string, bool) {
	if len(c.Segments) < 8 {
		return "", 0, "", false
	}
	width := c.Segments[0].Length
	seen := make(map[string]bool, len(c.Segments))
	var counts [256]float64
	var total float64
	for _, s := range c.Segments {
		if s.Length != width {
			return "", 0, "", false
		}
		v := string(s.Bytes())
		if seen[v] {
			return "", 0, "", false // recurring values are not nonces
		}
		seen[v] = true
		for _, b := range s.Bytes() {
			counts[b]++
			total++
		}
	}
	var entropy float64
	for _, n := range counts {
		if n == 0 {
			continue
		}
		p := n / total
		entropy -= p * math.Log2(p)
	}
	if entropy < minRandomEntropy {
		return "", 0, "", false
	}
	return LabelRandom, entropy / 8,
		"fixed width, all values distinct, near-uniform bytes", true
}

func distinct(xs []float64) int {
	set := make(map[float64]bool, len(xs))
	for _, x := range xs {
		set[x] = true
	}
	return len(set)
}

func pearson(xs, ys []float64) float64 {
	n := float64(len(xs))
	if n < 2 {
		return 0
	}
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
