package semantics

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"protoclust/internal/core"
	"protoclust/internal/netmsg"
	"protoclust/internal/protocols"
	"protoclust/internal/segment"
)

// clusterOf builds a synthetic cluster whose i-th segment value is
// produced by value(i), attached to a message built by msg(i).
func clusterOf(n int, value func(i int) []byte, msg func(i int, payload []byte) *netmsg.Message) *core.Cluster {
	c := &core.Cluster{ID: 1}
	for i := 0; i < n; i++ {
		v := value(i)
		m := msg(i, v)
		c.Segments = append(c.Segments, netmsg.Segment{Msg: m, Offset: 0, Length: len(v)})
	}
	return c
}

func plainMsg(i int, payload []byte) *netmsg.Message {
	return &netmsg.Message{
		Data:      payload,
		Timestamp: time.Unix(int64(1000+i), 0),
		SrcAddr:   "10.0.0.1:1",
		DstAddr:   "10.0.0.2:2",
	}
}

func TestConstantRule(t *testing.T) {
	c := clusterOf(10, func(int) []byte { return []byte{0x63, 0x82, 0x53, 0x63} }, plainMsg)
	d := Deduce(c)
	if d.Label != LabelConstant {
		t.Errorf("label = %v, want constant", d.Label)
	}
	if d.Confidence != 1 {
		t.Errorf("confidence = %v", d.Confidence)
	}
}

func TestLengthRule(t *testing.T) {
	c := clusterOf(20, func(i int) []byte {
		l := 10 + (i%5)*4
		return []byte{0, byte(l)}
	}, func(i int, payload []byte) *netmsg.Message {
		l := 10 + (i%5)*4
		data := make([]byte, l)
		copy(data, payload)
		m := plainMsg(i, data)
		return m
	})
	d := Deduce(c)
	if d.Label != LabelLength {
		t.Errorf("label = %v, want length-field (detail %q)", d.Label, d.Detail)
	}
	if d.Confidence < minCorrelation {
		t.Errorf("confidence = %v", d.Confidence)
	}
}

func TestTimestampRule(t *testing.T) {
	c := clusterOf(20, func(i int) []byte {
		// Seconds counter mirroring capture time plus jitter in low byte.
		v := uint32(50000 + i*3)
		return []byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v) | byte(i%2)}
	}, func(i int, payload []byte) *netmsg.Message {
		m := plainMsg(i, payload)
		m.Timestamp = time.Unix(int64(50000+i*3), 0)
		return m
	})
	d := Deduce(c)
	if d.Label != LabelTimestamp {
		t.Errorf("label = %v, want timestamp (detail %q)", d.Label, d.Detail)
	}
}

// TestTimestampRuleRejectsEpochZeroTimes is the regression test for the
// absent-capture-time guard: traces without IP encapsulation (AWDL/AU
// style) surface re-stamped capture times at or around epoch zero —
// time.Unix(0, n) is NOT time.Time's zero value, so the IsZero guard
// alone does not catch it. A column of such pseudo-times must not
// correlate into a timestamp label even when the values track the
// nanosecond remainders perfectly.
func TestTimestampRuleRejectsEpochZeroTimes(t *testing.T) {
	build := func(stamp func(i int) time.Time) *core.Cluster {
		return clusterOf(20, func(i int) []byte {
			v := uint32(i * 1000)
			return []byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
		}, func(i int, payload []byte) *netmsg.Message {
			m := plainMsg(i, payload)
			m.Timestamp = stamp(i)
			return m
		})
	}
	epoch := build(func(i int) time.Time { return time.Unix(0, int64(i*1000)) })
	if _, _, _, ok := timestampRule(epoch); ok {
		t.Error("timestampRule fired on epoch-zero capture times")
	}
	if d := Deduce(epoch); d.Label == LabelTimestamp {
		t.Errorf("Deduce labeled epoch-zero times as timestamp (detail %q)", d.Detail)
	}
	preEpoch := build(func(i int) time.Time { return time.Unix(int64(-1000+i), 0) })
	if _, _, _, ok := timestampRule(preEpoch); ok {
		t.Error("timestampRule fired on pre-epoch capture times")
	}
	// Sanity: the same value column with genuine capture times still
	// deduces a timestamp.
	genuine := build(func(i int) time.Time { return time.Unix(int64(50000+i*1000), 0) })
	if _, _, _, ok := timestampRule(genuine); !ok {
		t.Error("timestampRule stopped firing on genuine capture times")
	}
}

func TestCounterRule(t *testing.T) {
	c := clusterOf(20, func(i int) []byte {
		return []byte{0, byte(i * 2)}
	}, func(i int, payload []byte) *netmsg.Message {
		m := plainMsg(i, payload)
		// Same message length so the length rule cannot fire; timestamps
		// increase, but the values repeat per pair so timestamp
		// correlation is dampened below a counter's.
		return m
	})
	d := Deduce(c)
	// Counter values correlate with time too; either deduction is
	// semantically right, but monotone counters must not be "unknown".
	if d.Label != LabelCounter && d.Label != LabelTimestamp {
		t.Errorf("label = %v, want counter or timestamp", d.Label)
	}
}

func TestCounterRuleNonMonotone(t *testing.T) {
	c := clusterOf(20, func(i int) []byte {
		return []byte{byte(i * 37), byte(i * 91)} // scrambled
	}, plainMsg)
	d := Deduce(c)
	if d.Label == LabelCounter {
		t.Error("scrambled values deduced as counter")
	}
}

func TestHostIDRule(t *testing.T) {
	c := clusterOf(12, func(i int) []byte {
		return []byte{0xAA, byte(i % 4)} // one value per host
	}, func(i int, payload []byte) *netmsg.Message {
		m := plainMsg(i, payload)
		m.SrcAddr = fmt.Sprintf("10.0.0.%d:5", i%4)
		// Constant rule must not fire; host-id requires ≥3 hosts.
		return m
	})
	d := Deduce(c)
	if d.Label != LabelHostID {
		t.Errorf("label = %v, want host-id (detail %q)", d.Label, d.Detail)
	}
}

func TestCharsRule(t *testing.T) {
	words := []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot"}
	c := clusterOf(len(words), func(i int) []byte { return []byte(words[i]) }, plainMsg)
	d := Deduce(c)
	if d.Label != LabelChars {
		t.Errorf("label = %v, want char-sequence", d.Label)
	}
}

func TestEnumRule(t *testing.T) {
	c := clusterOf(24, func(i int) []byte {
		return []byte{0x10, byte(1 + i%3)} // three values, eight times each
	}, plainMsg)
	d := Deduce(c)
	if d.Label != LabelEnum {
		t.Errorf("label = %v, want enumeration (detail %q)", d.Label, d.Detail)
	}
}

func TestUnknownForRandom(t *testing.T) {
	c := clusterOf(20, func(i int) []byte {
		return []byte{byte(i * 57), byte(i*113 + 7), byte(i * 31), byte(i*201 + 3)}
	}, func(i int, payload []byte) *netmsg.Message {
		m := plainMsg(i, payload)
		m.SrcAddr = fmt.Sprintf("10.0.0.%d:5", i) // unique host per segment
		return m
	})
	// Unique host per value makes host-id trivially bijective; break it
	// by reusing hosts with different values.
	c.Segments[0].Msg.SrcAddr = c.Segments[1].Msg.SrcAddr
	d := Deduce(c)
	if d.Label == LabelConstant || d.Label == LabelEnum || d.Label == LabelLength {
		t.Errorf("random cluster mislabeled as %v", d.Label)
	}
}

func TestEmptyCluster(t *testing.T) {
	d := Deduce(&core.Cluster{ID: 3})
	if d.Label != LabelUnknown {
		t.Errorf("empty cluster label = %v, want unknown", d.Label)
	}
}

func TestDeduceAllOnRealPipeline(t *testing.T) {
	tr, err := protocols.Generate("ntp", 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	segs, err := segment.GroundTruth{}.Segment(tr.Deduplicate())
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.ClusterSegments(segs, core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	ds := DeduceAll(res)
	if len(ds) != len(res.Clusters) {
		t.Fatalf("deductions = %d, want %d", len(ds), len(res.Clusters))
	}
	// The NTP timestamp cluster must be recognized: its era seconds
	// correlate with capture time. Find the biggest cluster and check.
	biggest := 0
	for i, c := range res.Clusters {
		if len(c.Segments) > len(res.Clusters[biggest].Segments) {
			biggest = i
		}
	}
	if got := ds[biggest].Label; got != LabelTimestamp && got != LabelCounter {
		t.Errorf("dominant NTP cluster deduced as %v (detail %q), want timestamp/counter",
			got, ds[biggest].Detail)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3}
	if r := pearson(xs, []float64{10, 20, 30}); r < 0.999 {
		t.Errorf("perfect correlation = %v", r)
	}
	if r := pearson(xs, []float64{5, 5, 5}); r != 0 {
		t.Errorf("constant ys correlation = %v", r)
	}
	if r := pearson([]float64{1}, []float64{2}); r != 0 {
		t.Errorf("single sample correlation = %v", r)
	}
}

func TestRandomRule(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := clusterOf(40, func(i int) []byte {
		v := make([]byte, 8)
		rng.Read(v)
		return v
	}, func(i int, payload []byte) *netmsg.Message {
		m := plainMsg(i, payload)
		m.SrcAddr = fmt.Sprintf("10.0.0.%d:1", i%7) // break host-id bijection
		return m
	})
	d := Deduce(c)
	if d.Label != LabelRandom {
		t.Errorf("label = %v (detail %q), want checksum-or-random", d.Label, d.Detail)
	}
	if d.Confidence < 0.8 {
		t.Errorf("confidence = %v, want high for uniform bytes", d.Confidence)
	}
}

func TestRandomRuleRejectsLowEntropy(t *testing.T) {
	c := clusterOf(40, func(i int) []byte {
		// Distinct but low-entropy values (only two byte symbols).
		return []byte{0, 0, 0, 0, 0, 0, byte(i / 2 % 2), byte(i)%2 | byte(i/4)<<1}
	}, plainMsg)
	d := Deduce(c)
	if d.Label == LabelRandom {
		t.Error("low-entropy values misclassified as random")
	}
}

func TestRandomRuleRejectsVariableWidth(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c := clusterOf(20, func(i int) []byte {
		v := make([]byte, 6+i%3)
		rng.Read(v)
		return v
	}, plainMsg)
	d := Deduce(c)
	if d.Label == LabelRandom {
		t.Error("variable-width values misclassified as checksum")
	}
}

func TestCharsRuleRejectsSmallIntegers(t *testing.T) {
	// 16-bit values like 0x0064 are half zero bytes, half printable-range
	// bytes; they must not be classified as char sequences.
	c := clusterOf(20, func(i int) []byte {
		return []byte{0x00, byte(0x60 + i)}
	}, plainMsg)
	d := Deduce(c)
	if d.Label == LabelChars {
		t.Error("small integers misclassified as char-sequence")
	}
}

func TestCharsRuleToleratesTerminators(t *testing.T) {
	words := []string{"alpha\x00", "bravo\x00", "charlie\x00", "deltaX\x00", "echoYZ\x00", "foxtrot\x00"}
	c := clusterOf(len(words), func(i int) []byte { return []byte(words[i]) }, plainMsg)
	d := Deduce(c)
	if d.Label != LabelChars {
		t.Errorf("zero-terminated strings = %v, want char-sequence", d.Label)
	}
}
