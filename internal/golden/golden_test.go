package golden

import (
	"os"
	"path/filepath"
	"testing"
)

// TestRunDeterministic runs the same spec twice; the pipeline is fully
// seeded, so the records must be bit-identical (the property that makes
// the golden harness trustworthy).
func TestRunDeterministic(t *testing.T) {
	spec := Spec{Protocol: "ntp", Messages: 100, Seed: 1}
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("two runs of %v differ:\n%+v\n%+v", spec, a, b)
	}
}

// TestSaveLoadRoundTrip checks the JSON persistence.
func TestSaveLoadRoundTrip(t *testing.T) {
	rec := &Record{
		Spec: Spec{Protocol: "ntp", Messages: 100, Seed: 1}, Epsilon: 0.1865, K: 2,
		MinSamples: 4, FromKnee: true, UniqueSegments: 120, Clusters: 2,
		NoiseSegments: 3, Precision: 1, Recall: 0.985, FScore: 0.999, Coverage: 0.83,
	}
	path := filepath.Join(t.TempDir(), "sub", "ntp-100.json")
	if err := Save(path, rec); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *rec {
		t.Fatalf("round trip changed the record:\n%+v\n%+v", got, rec)
	}
}

// TestCompareFlagsDrift checks each tolerance band: values inside pass,
// values outside produce a violation naming the metric.
func TestCompareFlagsDrift(t *testing.T) {
	base := &Record{
		Spec: Spec{Protocol: "x", Messages: 10, Seed: 1}, Epsilon: 0.1, K: 2,
		MinSamples: 3, FromKnee: true, UniqueSegments: 50, Clusters: 4,
		NoiseSegments: 2, Precision: 0.9, Recall: 0.8, FScore: 0.89, Coverage: 0.7,
	}
	tol := Tolerance{Epsilon: 0.01, Metric: 0.02, Clusters: 1, Noise: 2}

	within := *base
	within.Epsilon += 0.009
	within.Precision -= 0.019
	within.Clusters++
	within.NoiseSegments += 2
	if v := Compare(base, &within, tol); len(v) != 0 {
		t.Fatalf("in-band drift flagged: %v", v)
	}

	cases := []struct {
		name   string
		mutate func(*Record)
	}{
		{"epsilon", func(r *Record) { r.Epsilon += 0.02 }},
		{"k", func(r *Record) { r.K = 3 }},
		{"min_samples", func(r *Record) { r.MinSamples = 4 }},
		{"from_knee", func(r *Record) { r.FromKnee = false }},
		{"unique", func(r *Record) { r.UniqueSegments = 51 }},
		{"clusters", func(r *Record) { r.Clusters += 2 }},
		{"noise", func(r *Record) { r.NoiseSegments += 3 }},
		{"precision", func(r *Record) { r.Precision -= 0.03 }},
		{"recall", func(r *Record) { r.Recall += 0.03 }},
		{"f_score", func(r *Record) { r.FScore -= 0.03 }},
		{"coverage", func(r *Record) { r.Coverage += 0.03 }},
	}
	for _, c := range cases {
		got := *base
		c.mutate(&got)
		if v := Compare(base, &got, tol); len(v) == 0 {
			t.Errorf("%s drift not flagged", c.name)
		}
	}
}

// TestCheckedInRecordAgrees replays one golden trace against the
// checked-in record, so `go test ./...` catches a stale or drifted
// record without paying for the full goldencheck set.
func TestCheckedInRecordAgrees(t *testing.T) {
	spec := Spec{Protocol: "ntp", Messages: 100, Seed: 1}
	path := Path(filepath.Join("..", "..", "testdata", "golden"), spec)
	if _, err := os.Stat(path); err != nil {
		t.Skipf("no golden record at %s (run `make golden-update`)", path)
	}
	want, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if v := Compare(want, got, DefaultTolerance()); len(v) > 0 {
		t.Fatalf("checked-in record disagrees with live run: %v", v)
	}
}
