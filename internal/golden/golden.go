// Package golden implements the golden-trace regression harness: it
// runs the full analysis pipeline on a fixed set of seeded synthetic
// traces and compares the headline numbers — ε, k', cluster count,
// precision, recall, F¼, byte coverage — against records checked into
// testdata/golden/. Any metric leaving its declared tolerance band
// fails the check, catching silent quality regressions that unit tests
// of individual stages cannot see.
//
// The records are regenerated with `goldencheck -update` (wired as
// `make golden-update`); the diff then documents exactly how a change
// moved the pipeline.
package golden

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"protoclust/internal/core"
	"protoclust/internal/dissim"
	"protoclust/internal/eval"
	"protoclust/internal/protocols"
	"protoclust/internal/segment"
)

// Spec identifies one golden trace: a registered protocol generator, a
// message count, and the generator seed.
type Spec struct {
	Protocol string `json:"protocol"`
	Messages int    `json:"messages"`
	Seed     int64  `json:"seed"`
}

// String renders the spec as "proto-N", matching the paper's trace
// naming.
func (s Spec) String() string { return fmt.Sprintf("%s-%d", s.Protocol, s.Messages) }

// Record is the golden snapshot of one pipeline run.
type Record struct {
	Spec
	// Configuration selected by Algorithm 1 (after the 60 % guard).
	Epsilon    float64 `json:"epsilon"`
	K          int     `json:"k"`
	MinSamples int     `json:"min_samples"`
	FromKnee   bool    `json:"from_knee"`
	// Population and clustering shape.
	UniqueSegments int `json:"unique_segments"`
	Clusters       int `json:"clusters"`
	NoiseSegments  int `json:"noise_segments"`
	// Quality metrics (Section IV-A).
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	FScore    float64 `json:"f_score"`
	Coverage  float64 `json:"coverage"`
}

// Tolerance declares how far a freshly computed record may drift from
// its golden counterpart before the check fails. Integral structure
// (k, min_samples, unique segments, knee-vs-fallback) must match
// exactly; it is deterministic given the seeded generator.
type Tolerance struct {
	// Epsilon is the allowed absolute drift of ε.
	Epsilon float64
	// Metric is the allowed absolute drift of precision, recall, F¼,
	// and coverage.
	Metric float64
	// Clusters is the allowed absolute drift of the cluster count.
	Clusters int
	// Noise is the allowed absolute drift of the noise-segment count.
	Noise int
}

// DefaultTolerance bounds drift tightly: the pipeline is deterministic,
// so the bands only need to absorb minor floating-point reordering
// (e.g. a refactored summation), not behavioral change.
func DefaultTolerance() Tolerance {
	return Tolerance{Epsilon: 0.005, Metric: 0.01, Clusters: 1, Noise: 5}
}

// DefaultTraces is the golden trace set: every registered protocol at
// its small paper size (100 messages; AU at its fixed 123), plus the
// two 1000-message traces whose ε selection historically proved most
// sensitive to auto-configuration changes.
func DefaultTraces() []Spec {
	specs := []Spec{
		{"dhcp", 100, 1}, {"dns", 100, 1}, {"nbns", 100, 1}, {"ntp", 100, 1},
		{"smb", 100, 1}, {"awdl", 100, 1}, {"modbus", 100, 1}, {"au", 123, 1},
		{"dns", 1000, 1}, {"ntp", 1000, 1},
	}
	return specs
}

// Run executes the full pipeline — generate, deduplicate, ground-truth
// segment, dissimilarity matrix, auto-configured DBSCAN, refinement,
// evaluation — for one spec and returns its record.
func Run(s Spec) (*Record, error) {
	return RunBackend(s, "")
}

// RunBackend is Run with an explicit dissimilarity-matrix backend
// ("dense", "condensed", "tiled"; "" = automatic). Every backend stores
// identically quantized values, so the records must come out identical
// — `make golden-check` exercises the default and the tiled path
// against the same golden files.
func RunBackend(s Spec, backend string) (*Record, error) {
	tr, err := protocols.Generate(s.Protocol, s.Messages, s.Seed)
	if err != nil {
		return nil, fmt.Errorf("golden: generate %s: %w", s, err)
	}
	dd := tr.Deduplicate()
	segs, err := segment.GroundTruth{}.Segment(dd)
	if err != nil {
		return nil, fmt.Errorf("golden: segment %s: %w", s, err)
	}
	pool := dissim.NewPool(segs)
	p := core.DefaultParams()
	m, err := dissim.ComputeMatrix(pool, dissim.Config{Penalty: p.Penalty, Backend: backend})
	if err != nil {
		return nil, fmt.Errorf("golden: dissimilarities %s: %w", s, err)
	}
	res, err := core.ClusterPool(pool, m, p)
	if err != nil {
		return nil, fmt.Errorf("golden: cluster %s: %w", s, err)
	}
	met := eval.EvaluateResult(res)
	rec := &Record{
		Spec:           s,
		Epsilon:        res.Config.Epsilon,
		K:              res.Config.K,
		MinSamples:     res.Config.MinSamples,
		FromKnee:       res.Config.FromKnee,
		UniqueSegments: pool.Size(),
		Clusters:       len(res.Clusters),
		NoiseSegments:  len(res.Noise),
		Precision:      met.Precision,
		Recall:         met.Recall,
		FScore:         met.FScore,
		Coverage:       eval.Coverage(res, dd),
	}
	return rec, nil
}

// Compare returns a list of human-readable violations of got against
// want under the tolerance bands; empty means the records agree.
func Compare(want, got *Record, tol Tolerance) []string {
	var v []string
	fail := func(format string, args ...interface{}) {
		v = append(v, fmt.Sprintf(format, args...))
	}
	if got.Spec != want.Spec {
		fail("spec mismatch: golden %v, got %v", want.Spec, got.Spec)
		return v
	}
	if math.Abs(got.Epsilon-want.Epsilon) > tol.Epsilon {
		fail("epsilon %.5f drifted from golden %.5f (band ±%.3g)", got.Epsilon, want.Epsilon, tol.Epsilon)
	}
	if got.K != want.K {
		fail("k = %d, golden %d", got.K, want.K)
	}
	if got.MinSamples != want.MinSamples {
		fail("min_samples = %d, golden %d", got.MinSamples, want.MinSamples)
	}
	if got.FromKnee != want.FromKnee {
		fail("from_knee = %v, golden %v", got.FromKnee, want.FromKnee)
	}
	if got.UniqueSegments != want.UniqueSegments {
		fail("unique segments = %d, golden %d", got.UniqueSegments, want.UniqueSegments)
	}
	if d := got.Clusters - want.Clusters; d > tol.Clusters || d < -tol.Clusters {
		fail("clusters = %d, golden %d (band ±%d)", got.Clusters, want.Clusters, tol.Clusters)
	}
	if d := got.NoiseSegments - want.NoiseSegments; d > tol.Noise || d < -tol.Noise {
		fail("noise segments = %d, golden %d (band ±%d)", got.NoiseSegments, want.NoiseSegments, tol.Noise)
	}
	metric := func(name string, g, w float64) {
		if math.Abs(g-w) > tol.Metric {
			fail("%s %.4f drifted from golden %.4f (band ±%.3g)", name, g, w, tol.Metric)
		}
	}
	metric("precision", got.Precision, want.Precision)
	metric("recall", got.Recall, want.Recall)
	metric("f_score", got.FScore, want.FScore)
	metric("coverage", got.Coverage, want.Coverage)
	return v
}

// Path returns the golden file path for a spec inside dir.
func Path(dir string, s Spec) string {
	return filepath.Join(dir, s.String()+".json")
}

// Load reads one golden record from path.
func Load(path string) (*Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("golden: parse %s: %w", path, err)
	}
	return &rec, nil
}

// Save writes one golden record to path, creating the directory as
// needed. The JSON is indented and newline-terminated so diffs stay
// reviewable.
func Save(path string, rec *Record) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
