package golden

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"protoclust/internal/core"
	"protoclust/internal/dissim"
	"protoclust/internal/format"
	"protoclust/internal/netmsg"
	"protoclust/internal/protocols"
	"protoclust/internal/segment"
)

// FormatSpec identifies one golden recognition run: templates are
// trained on the TrainSeed trace and recognize the RecognizeSeed trace
// of the same protocol and size.
type FormatSpec struct {
	Protocol      string `json:"protocol"`
	Messages      int    `json:"messages"`
	TrainSeed     int64  `json:"train_seed"`
	RecognizeSeed int64  `json:"recognize_seed"`
}

// String renders the spec as "format-proto-N".
func (s FormatSpec) String() string {
	return fmt.Sprintf("format-%s-%d", s.Protocol, s.Messages)
}

// FormatRecord is the golden snapshot of one cross-trace recognition.
type FormatRecord struct {
	FormatSpec
	// Templates counts the learned template set; Assigned and Unknown
	// partition the recognized trace's clusters by classification
	// outcome; Formats counts distinct recognized message layouts.
	Templates int `json:"templates"`
	Assigned  int `json:"assigned"`
	Unknown   int `json:"unknown"`
	Formats   int `json:"formats"`
	// TypeAccuracy is the byte-weighted share of classified segments
	// whose template's ground-truth type matches the segment's;
	// ByteCoverage is the share of trace bytes under a non-unknown
	// field.
	TypeAccuracy float64 `json:"type_accuracy"`
	ByteCoverage float64 `json:"byte_coverage"`
}

// DefaultFormatTraces is the golden recognition set: the protocols
// whose generators produce enough value diversity for template
// transfer, trained on seed 1 and recognized on seed 2 at the paper's
// small trace size.
func DefaultFormatTraces() []FormatSpec {
	return []FormatSpec{
		{"ntp", 100, 1, 2}, {"dns", 100, 1, 2}, {"dhcp", 100, 1, 2},
		{"nbns", 100, 1, 2}, {"modbus", 100, 1, 2},
	}
}

// clusterTrace runs the pipeline prefix shared by RunBackend and
// RunFormat — generate, deduplicate, ground-truth segment,
// dissimilarity matrix, auto-configured clustering — and returns the
// result alongside the deduplicated trace it was computed from.
func clusterTrace(protocol string, messages int, seed int64) (*core.Result, *netmsg.Trace, error) {
	tr, err := protocols.Generate(protocol, messages, seed)
	if err != nil {
		return nil, nil, fmt.Errorf("golden: generate %s: %w", protocol, err)
	}
	dd := tr.Deduplicate()
	segs, err := segment.GroundTruth{}.Segment(dd)
	if err != nil {
		return nil, nil, fmt.Errorf("golden: segment %s: %w", protocol, err)
	}
	pool := dissim.NewPool(segs)
	p := core.DefaultParams()
	m, err := dissim.ComputeMatrix(pool, dissim.Config{Penalty: p.Penalty})
	if err != nil {
		return nil, nil, fmt.Errorf("golden: dissimilarities %s: %w", protocol, err)
	}
	res, err := core.ClusterPool(pool, m, p)
	if err != nil {
		return nil, nil, fmt.Errorf("golden: cluster %s: %w", protocol, err)
	}
	return res, dd, nil
}

// RunFormat executes one golden recognition: cluster the training
// trace, learn templates, cluster the recognition trace, classify its
// clusters against the templates, and evaluate against ground truth.
func RunFormat(s FormatSpec) (*FormatRecord, error) {
	trainRes, trainDD, err := clusterTrace(s.Protocol, s.Messages, s.TrainSeed)
	if err != nil {
		return nil, err
	}
	ts, err := format.Learn(trainRes, trainDD)
	if err != nil {
		return nil, fmt.Errorf("golden: learn templates %s: %w", s, err)
	}
	recRes, recDD, err := clusterTrace(s.Protocol, s.Messages, s.RecognizeSeed)
	if err != nil {
		return nil, err
	}
	rec, err := format.Recognize(recRes, recDD, ts)
	if err != nil {
		return nil, fmt.Errorf("golden: recognize %s: %w", s, err)
	}
	out := &FormatRecord{
		FormatSpec: s,
		Templates:  len(ts.Templates),
		Formats:    len(rec.Schema.Formats),
	}
	for _, a := range rec.Assignments {
		if a.Unknown() {
			out.Unknown++
		} else {
			out.Assigned++
		}
	}
	ev := rec.Evaluate()
	out.TypeAccuracy = ev.TypeAccuracy()
	out.ByteCoverage = ev.ByteCoverage()
	return out, nil
}

// CompareFormat returns human-readable violations of got against want;
// the structural counts are deterministic and must match exactly, the
// quality metrics get the shared tolerance band.
func CompareFormat(want, got *FormatRecord, tol Tolerance) []string {
	var v []string
	fail := func(format string, args ...interface{}) {
		v = append(v, fmt.Sprintf(format, args...))
	}
	if got.FormatSpec != want.FormatSpec {
		fail("spec mismatch: golden %v, got %v", want.FormatSpec, got.FormatSpec)
		return v
	}
	if got.Templates != want.Templates {
		fail("templates = %d, golden %d", got.Templates, want.Templates)
	}
	if got.Assigned != want.Assigned {
		fail("assigned clusters = %d, golden %d", got.Assigned, want.Assigned)
	}
	if got.Unknown != want.Unknown {
		fail("unknown clusters = %d, golden %d", got.Unknown, want.Unknown)
	}
	if got.Formats != want.Formats {
		fail("message formats = %d, golden %d", got.Formats, want.Formats)
	}
	metric := func(name string, g, w float64) {
		if math.Abs(g-w) > tol.Metric {
			fail("%s %.4f drifted from golden %.4f (band ±%.3g)", name, g, w, tol.Metric)
		}
	}
	metric("type_accuracy", got.TypeAccuracy, want.TypeAccuracy)
	metric("byte_coverage", got.ByteCoverage, want.ByteCoverage)
	return v
}

// FormatPath returns the golden file path for a format spec inside dir.
func FormatPath(dir string, s FormatSpec) string {
	return filepath.Join(dir, s.String()+".json")
}

// LoadFormat reads one golden format record from path.
func LoadFormat(path string) (*FormatRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec FormatRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("golden: parse %s: %w", path, err)
	}
	return &rec, nil
}

// SaveFormat writes one golden format record to path, creating the
// directory as needed.
func SaveFormat(path string, rec *FormatRecord) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
