package golden

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestRunFormatDeterministic: the recognition harness is fully seeded,
// so two runs of the same spec must produce bit-identical records.
func TestRunFormatDeterministic(t *testing.T) {
	spec := FormatSpec{Protocol: "ntp", Messages: 100, TrainSeed: 1, RecognizeSeed: 2}
	a, err := RunFormat(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFormat(spec)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("two runs of %v differ:\n%+v\n%+v", spec, a, b)
	}
	if a.Templates == 0 || a.Assigned == 0 || a.Formats == 0 {
		t.Errorf("degenerate record: %+v", a)
	}
}

// TestFormatSaveLoadRoundTrip checks the JSON persistence.
func TestFormatSaveLoadRoundTrip(t *testing.T) {
	rec := &FormatRecord{
		FormatSpec: FormatSpec{Protocol: "ntp", Messages: 100, TrainSeed: 1, RecognizeSeed: 2},
		Templates:  2, Assigned: 2, Unknown: 0, Formats: 3,
		TypeAccuracy: 1, ByteCoverage: 0.74,
	}
	path := filepath.Join(t.TempDir(), "sub", "format-ntp-100.json")
	if err := SaveFormat(path, rec); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFormat(path)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *rec {
		t.Fatalf("round trip changed the record:\n%+v\n%+v", got, rec)
	}
}

// TestCompareFormatFlagsDrift: structural counts must match exactly,
// quality metrics get the tolerance band.
func TestCompareFormatFlagsDrift(t *testing.T) {
	base := &FormatRecord{
		FormatSpec: FormatSpec{Protocol: "x", Messages: 10, TrainSeed: 1, RecognizeSeed: 2},
		Templates:  3, Assigned: 2, Unknown: 1, Formats: 4,
		TypeAccuracy: 0.9, ByteCoverage: 0.7,
	}
	tol := Tolerance{Metric: 0.02}

	within := *base
	within.TypeAccuracy -= 0.019
	within.ByteCoverage += 0.019
	if v := CompareFormat(base, &within, tol); len(v) != 0 {
		t.Errorf("in-band drift flagged: %v", v)
	}

	cases := []struct {
		name   string
		mutate func(*FormatRecord)
	}{
		{"templates", func(r *FormatRecord) { r.Templates++ }},
		{"assigned", func(r *FormatRecord) { r.Assigned-- }},
		{"unknown", func(r *FormatRecord) { r.Unknown++ }},
		{"formats", func(r *FormatRecord) { r.Formats++ }},
		{"type_accuracy", func(r *FormatRecord) { r.TypeAccuracy -= 0.021 }},
		{"byte_coverage", func(r *FormatRecord) { r.ByteCoverage += 0.021 }},
		{"spec", func(r *FormatRecord) { r.RecognizeSeed = 9 }},
	}
	for _, tc := range cases {
		got := *base
		tc.mutate(&got)
		v := CompareFormat(base, &got, tol)
		if len(v) == 0 {
			t.Errorf("%s: out-of-band drift not flagged", tc.name)
			continue
		}
		joined := strings.Join(v, "\n")
		if !strings.Contains(joined, tc.name) && tc.name != "spec" {
			t.Errorf("%s: violations do not name the metric: %s", tc.name, joined)
		}
	}
}
