package eval

import (
	"math"
	"testing"
	"testing/quick"

	"protoclust/internal/core"
	"protoclust/internal/netmsg"
)

const (
	typeA = netmsg.FieldType("A")
	typeB = netmsg.FieldType("B")
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestClusterMetricsPerfect(t *testing.T) {
	m := ClusterMetrics([][]netmsg.FieldType{
		{typeA, typeA, typeA},
		{typeB, typeB},
	}, nil)
	if m.TP != 4 || m.FP != 0 || m.FN != 0 {
		t.Errorf("TP/FP/FN = %v/%v/%v, want 4/0/0", m.TP, m.FP, m.FN)
	}
	if m.Precision != 1 || m.Recall != 1 || m.FScore != 1 {
		t.Errorf("P/R/F = %v/%v/%v, want 1/1/1", m.Precision, m.Recall, m.FScore)
	}
}

func TestClusterMetricsOverclassified(t *testing.T) {
	// One type split into two clusters: precision stays 1, recall drops.
	m := ClusterMetrics([][]netmsg.FieldType{
		{typeA, typeA},
		{typeA, typeA},
	}, nil)
	if m.TP != 2 || m.FP != 0 {
		t.Errorf("TP/FP = %v/%v, want 2/0", m.TP, m.FP)
	}
	if m.FN != 4 {
		t.Errorf("FN = %v, want 4", m.FN)
	}
	if m.Precision != 1 {
		t.Errorf("P = %v, want 1", m.Precision)
	}
	if !almost(m.Recall, 2.0/6.0) {
		t.Errorf("R = %v, want 1/3", m.Recall)
	}
	// F¼ weights precision 4×: (1+1/16)·1·R / (1/16 + R).
	want := (1 + 1.0/16) * (2.0 / 6.0) / (1.0/16 + 2.0/6.0)
	if !almost(m.FScore, want) {
		t.Errorf("F = %v, want %v", m.FScore, want)
	}
}

func TestClusterMetricsUnderclassified(t *testing.T) {
	// Two types merged into one cluster: recall 1, precision drops.
	m := ClusterMetrics([][]netmsg.FieldType{
		{typeA, typeA, typeB, typeB},
	}, nil)
	if m.TP != 2 || m.FP != 4 || m.FN != 0 {
		t.Errorf("TP/FP/FN = %v/%v/%v, want 2/4/0", m.TP, m.FP, m.FN)
	}
	if !almost(m.Precision, 2.0/6.0) {
		t.Errorf("P = %v, want 1/3", m.Precision)
	}
	if m.Recall != 1 {
		t.Errorf("R = %v, want 1", m.Recall)
	}
}

func TestClusterMetricsWithNoise(t *testing.T) {
	// Hand-computed example: cluster {A,A}, noise {A,B,B}.
	m := ClusterMetrics([][]netmsg.FieldType{{typeA, typeA}},
		[]netmsg.FieldType{typeA, typeB, typeB})
	if m.TP != 1 || m.FP != 0 {
		t.Errorf("TP/FP = %v/%v, want 1/0", m.TP, m.FP)
	}
	// Missed pairs: 2 cluster↔noise A pairs + 1 noise B pair = 3.
	if m.FN != 3 {
		t.Errorf("FN = %v, want 3", m.FN)
	}
	if m.Precision != 1 || !almost(m.Recall, 0.25) {
		t.Errorf("P/R = %v/%v, want 1/0.25", m.Precision, m.Recall)
	}
}

func TestClusterMetricsEmpty(t *testing.T) {
	m := ClusterMetrics(nil, nil)
	if m.Precision != 0 || m.Recall != 0 || m.FScore != 0 {
		t.Errorf("empty metrics = %+v, want zeros", m)
	}
}

func TestClusterMetricsSingletons(t *testing.T) {
	// Singleton clusters contribute no pairs at all.
	m := ClusterMetrics([][]netmsg.FieldType{{typeA}, {typeB}}, nil)
	if m.TP != 0 || m.FP != 0 || m.FN != 0 {
		t.Errorf("singletons: %+v, want zero pair counts", m)
	}
}

func TestFBeta(t *testing.T) {
	if got := FBeta(1, 1, 0.25); got != 1 {
		t.Errorf("FBeta(1,1) = %v, want 1", got)
	}
	if got := FBeta(0, 0, 0.25); got != 0 {
		t.Errorf("FBeta(0,0) = %v, want 0", got)
	}
	// β=1 reduces to the standard F1.
	if got := FBeta(0.5, 1, 1); !almost(got, 2.0/3.0) {
		t.Errorf("F1(0.5,1) = %v, want 2/3", got)
	}
	// β=1/4: a low recall barely hurts when precision is 1.
	f := FBeta(1, 0.4, 0.25)
	f1 := FBeta(1, 0.4, 1)
	if f <= f1 {
		t.Errorf("F¼ (%v) should exceed F1 (%v) at high precision/low recall", f, f1)
	}
}

func TestFBetaPrecisionEmphasis(t *testing.T) {
	// With β = 1/4, losing precision must cost more than losing recall.
	lowP := FBeta(0.5, 1, 0.25)
	lowR := FBeta(1, 0.5, 0.25)
	if lowP >= lowR {
		t.Errorf("F(P=0.5,R=1) = %v should be below F(P=1,R=0.5) = %v", lowP, lowR)
	}
}

// buildResult runs the real pipeline over trivially separable segments
// with ground-truth dissections, for EvaluateResult/Coverage tests.
func buildResult(t *testing.T) (*core.Result, *netmsg.Trace) {
	t.Helper()
	tr := &netmsg.Trace{Protocol: "test"}
	var segs []netmsg.Segment
	for i := 0; i < 40; i++ {
		// Message: 4-byte counter-ish value + 4-byte high-value run.
		data := []byte{0, 1, byte(i / 8), byte(i), 0xf0, 0xf1, byte(0xf0 + i%16), 0xff}
		m := &netmsg.Message{
			Data: data,
			Fields: []netmsg.Field{
				{Name: "ctr", Offset: 0, Length: 4, Type: typeA},
				{Name: "hi", Offset: 4, Length: 4, Type: typeB},
			},
		}
		tr.Messages = append(tr.Messages, m)
		segs = append(segs,
			netmsg.Segment{Msg: m, Offset: 0, Length: 4},
			netmsg.Segment{Msg: m, Offset: 4, Length: 4},
		)
	}
	res, err := core.ClusterSegments(segs, core.DefaultParams())
	if err != nil {
		t.Fatalf("ClusterSegments: %v", err)
	}
	return res, tr
}

func TestEvaluateResult(t *testing.T) {
	res, _ := buildResult(t)
	m := EvaluateResult(res)
	if m.Precision < 0.9 {
		t.Errorf("precision = %v on separable types, want ≥ 0.9", m.Precision)
	}
	if m.FScore < 0.8 {
		t.Errorf("F-score = %v, want ≥ 0.8", m.FScore)
	}
}

func TestCoverage(t *testing.T) {
	res, tr := buildResult(t)
	cov := Coverage(res, tr)
	if cov <= 0 || cov > 1 {
		t.Fatalf("coverage = %v, want in (0,1]", cov)
	}
	if cov < 0.5 {
		t.Errorf("coverage = %v, want most bytes covered for separable types", cov)
	}
}

func TestCoverageEmptyTrace(t *testing.T) {
	res, _ := buildResult(t)
	if got := Coverage(res, &netmsg.Trace{}); got != 0 {
		t.Errorf("coverage of empty trace = %v, want 0", got)
	}
}

func TestExactBoundaryShare(t *testing.T) {
	res, _ := buildResult(t)
	// Segments were exactly the true fields.
	if got := ExactBoundaryShare(res); got != 1 {
		t.Errorf("ExactBoundaryShare = %v, want 1 for ground-truth segments", got)
	}
}

// Property: metrics stay in range and FScore is between min and max of
// precision and recall for arbitrary cluster compositions.
func TestMetricsRangeProperty(t *testing.T) {
	f := func(sizes []uint8, mix []bool) bool {
		var clusters [][]netmsg.FieldType
		bi := 0
		for _, s := range sizes {
			n := int(s)%6 + 1
			var c []netmsg.FieldType
			for j := 0; j < n; j++ {
				typ := typeA
				if bi < len(mix) && mix[bi] {
					typ = typeB
				}
				bi++
				c = append(c, typ)
			}
			clusters = append(clusters, c)
		}
		m := ClusterMetrics(clusters, nil)
		if m.Precision < 0 || m.Precision > 1 || m.Recall < 0 || m.Recall > 1 {
			return false
		}
		if m.FScore < 0 || m.FScore > 1 {
			return false
		}
		return m.TP >= 0 && m.FP >= 0 && m.FN >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: pair-count conservation — TP+FP equals the total
// within-cluster pairs.
func TestPairConservationProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		var clusters [][]netmsg.FieldType
		var want float64
		for i, s := range sizes {
			n := int(s)%8 + 1
			c := make([]netmsg.FieldType, n)
			for j := range c {
				if (i+j)%3 == 0 {
					c[j] = typeB
				} else {
					c[j] = typeA
				}
			}
			clusters = append(clusters, c)
			want += float64(n) * float64(n-1) / 2
		}
		m := ClusterMetrics(clusters, nil)
		return almost(m.TP+m.FP, want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
