package eval

import (
	"protoclust/internal/dbscan"
)

// Silhouette computes the mean silhouette coefficient of a labeling over
// a precomputed dissimilarity matrix — the internal validity metric the
// configuration sweep scores with when no ground truth is available.
//
// Conventions follow the common sklearn definition: labels[i] < 0 marks
// noise, which is excluded both as a scored sample and as a neighbor
// population; a sample in a singleton cluster scores 0; fewer than two
// non-noise clusters (nothing to contrast against) scores 0 overall.
// The score is the unweighted mean of per-sample coefficients
// s = (b − a) / max(a, b), where a is the mean intra-cluster distance
// and b the smallest mean distance to any other cluster.
//
// When the matrix implements dbscan.RowStreamer the per-sample
// accumulation streams spans instead of calling Dist n times.
// Accumulation is strictly sequential in ascending sample order, so the
// result is deterministic for a given (matrix, labels) pair.
func Silhouette(m dbscan.Matrix, labels []int) float64 {
	n := m.Len()
	if len(labels) != n {
		return 0
	}

	// Compact the non-negative labels to 0…k−1 preserving ascending
	// label order, and count cluster sizes.
	maxLabel := -1
	for _, l := range labels {
		if l > maxLabel {
			maxLabel = l
		}
	}
	if maxLabel < 0 {
		return 0 // all noise
	}
	compact := make([]int, maxLabel+1)
	for i := range compact {
		compact[i] = -1
	}
	var sizes []int
	for _, l := range labels {
		if l < 0 {
			continue
		}
		if compact[l] < 0 {
			compact[l] = -2 // seen, index assigned below in label order
		}
	}
	for l := range compact {
		if compact[l] == -2 {
			compact[l] = len(sizes)
			sizes = append(sizes, 0)
		}
	}
	for _, l := range labels {
		if l >= 0 {
			sizes[compact[l]]++
		}
	}
	if len(sizes) < 2 {
		return 0
	}

	streamer, canStream := m.(dbscan.RowStreamer)
	sums := make([]float64, len(sizes))
	var total float64
	var scored int
	for i := 0; i < n; i++ {
		li := labels[i]
		if li < 0 {
			continue
		}
		ci := compact[li]
		scored++
		if sizes[ci] < 2 {
			// Singleton cluster: s = 0 by convention; still counted.
			continue
		}
		for c := range sums {
			sums[c] = 0
		}
		if canStream {
			streamer.StreamRow(i, func(lo int, vals []float32) {
				for o, d := range vals {
					if l := labels[lo+o]; l >= 0 {
						sums[compact[l]] += float64(d)
					}
				}
			})
		} else {
			for j := 0; j < n; j++ {
				if l := labels[j]; l >= 0 {
					sums[compact[l]] += m.Dist(i, j)
				}
			}
		}
		// The i-th sample contributed Dist(i,i) = 0 to its own cluster's
		// sum, so the intra mean divides by size−1 without correction.
		a := sums[ci] / float64(sizes[ci]-1)
		b := 0.0
		first := true
		for c := range sums {
			if c == ci {
				continue
			}
			mean := sums[c] / float64(sizes[c])
			if first || mean < b {
				b = mean
				first = false
			}
		}
		if d := max(a, b); d > 0 {
			total += (b - a) / d
		}
	}
	if scored == 0 {
		return 0
	}
	return total / float64(scored)
}
