// Package eval implements the paper's evaluation metrics (Section
// IV-A): combinatorial precision and recall over pairwise assignments
// of unique segments (Manning et al.), the F_β score with β = 1/4, and
// byte coverage.
package eval

import (
	"math"

	"protoclust/internal/core"
	"protoclust/internal/detmap"
	"protoclust/internal/netmsg"
)

// Beta is the paper's F-score weight: β = 1/4 emphasises precision four
// times over recall, because precise clusters are crucial while low
// recall only diminishes coverage.
const Beta = 0.25

// Metrics aggregates the clustering quality statistics.
type Metrics struct {
	// TP, FP, and FN are combinatorial pair counts; FN includes the two
	// noise terms of Section IV-A.
	TP float64
	FP float64
	FN float64
	// Precision is TP/(TP+FP); 0 when no positive pairs exist.
	Precision float64
	// Recall is TP/(TP+FN); 0 when no true pairs exist.
	Recall float64
	// FScore is the F_β score with β = Beta.
	FScore float64
}

func choose2(n int) float64 {
	if n < 2 {
		return 0
	}
	return float64(n) * float64(n-1) / 2
}

// ClusterMetrics computes the combinatorial statistics for a clustering
// given, per cluster, the ground-truth type of each unique member
// segment, plus the types of the unique segments relegated to noise.
func ClusterMetrics(clusters [][]netmsg.FieldType, noise []netmsg.FieldType) Metrics {
	// Count members per (cluster, type) and per type overall.
	perCluster := make([]map[netmsg.FieldType]int, len(clusters))
	typeTotal := make(map[netmsg.FieldType]int)
	for i, c := range clusters {
		perCluster[i] = make(map[netmsg.FieldType]int)
		for _, typ := range c {
			perCluster[i][typ]++
			typeTotal[typ]++
		}
	}
	noiseType := make(map[netmsg.FieldType]int)
	for _, typ := range noise {
		noiseType[typ]++
		typeTotal[typ]++
	}

	var m Metrics
	// TP+FP = Σ_i C(|c_i|, 2); TP = Σ_i Σ_l C(|t_il|, 2).
	var tpfp float64
	for i, c := range clusters {
		tpfp += choose2(len(c))
		for _, typ := range detmap.SortedKeys(perCluster[i]) {
			m.TP += choose2(perCluster[i][typ])
		}
	}
	m.FP = tpfp - m.TP

	// FN = Σ_i Σ_l (|t_l|−|t_il|)·|t_il|/2            (split across clusters)
	//    + Σ_l C(|t_nl|, 2)                            (pairs lost to noise)
	//    + Σ_l (|t_l|−|t_nl|)·|t_nl|/2                 (noise vs. clustered)
	for i := range clusters {
		for _, typ := range detmap.SortedKeys(perCluster[i]) {
			til := perCluster[i][typ]
			m.FN += float64(typeTotal[typ]-til) * float64(til) / 2
		}
	}
	for _, typ := range detmap.SortedKeys(noiseType) {
		tnl := noiseType[typ]
		m.FN += choose2(tnl)
		m.FN += float64(typeTotal[typ]-tnl) * float64(tnl) / 2
	}

	if tpfp > 0 {
		m.Precision = m.TP / tpfp
	}
	if m.TP+m.FN > 0 {
		m.Recall = m.TP / (m.TP + m.FN)
	}
	m.FScore = FBeta(m.Precision, m.Recall, Beta)
	return m
}

// FBeta computes the F_β score, the weighted harmonic mean of precision
// and recall (van Rijsbergen).
func FBeta(precision, recall, beta float64) float64 {
	if precision == 0 && recall == 0 {
		return 0
	}
	b2 := beta * beta
	denom := b2*precision + recall
	if denom == 0 {
		return 0
	}
	return (1 + b2) * precision * recall / denom
}

// EvaluateResult labels every unique segment of a pipeline result with
// its dominant ground-truth type and computes the cluster metrics. It
// requires the underlying messages to carry ground-truth dissections.
func EvaluateResult(res *core.Result) Metrics {
	clusters := make([][]netmsg.FieldType, len(res.Clusters))
	for i, c := range res.Clusters {
		for _, idx := range c.UniqueIndexes {
			typ, _ := res.Pool.Unique[idx].DominantTrueType()
			clusters[i] = append(clusters[i], typ)
		}
	}
	// Noise is stored as occurrences; recover the unique indices as the
	// pool entries belonging to no cluster.
	var noise []netmsg.FieldType
	inCluster := make(map[int]bool)
	for _, c := range res.Clusters {
		for _, idx := range c.UniqueIndexes {
			inCluster[idx] = true
		}
	}
	for idx := range res.Pool.Unique {
		if !inCluster[idx] {
			typ, _ := res.Pool.Unique[idx].DominantTrueType()
			noise = append(noise, typ)
		}
	}
	return ClusterMetrics(clusters, noise)
}

// Coverage returns the ratio of bytes the analysis makes a statement
// about to all message bytes in the analyzed trace (Section IV-A).
func Coverage(res *core.Result, tr *netmsg.Trace) float64 {
	total := tr.TotalBytes()
	if total == 0 {
		return 0
	}
	cov := float64(res.CoveredBytes()) / float64(total)
	return math.Min(cov, 1)
}

// ExactBoundaryShare returns the fraction of unique segments whose
// boundaries exactly match a true field — a segmentation-quality
// diagnostic used in the Figure 3 discussion.
func ExactBoundaryShare(res *core.Result) float64 {
	if len(res.Pool.Unique) == 0 {
		return 0
	}
	exact := 0
	for _, s := range res.Pool.Unique {
		if _, ok := s.DominantTrueType(); ok {
			exact++
		}
	}
	return float64(exact) / float64(len(res.Pool.Unique))
}
