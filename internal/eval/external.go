package eval

import (
	"math"

	"protoclust/internal/core"
	"protoclust/internal/detmap"
	"protoclust/internal/netmsg"
)

// ExternalMetrics are clustering-vs-ground-truth statistics
// complementary to the paper's combinatorial precision/recall: the
// Adjusted Rand Index and the entropy-based homogeneity, completeness,
// and V-measure. They cross-check the headline numbers — a clustering
// with high F¼ must also score high ARI/homogeneity.
type ExternalMetrics struct {
	// AdjustedRand is the chance-corrected Rand index in [-1, 1].
	AdjustedRand float64
	// Homogeneity is 1 when every cluster contains only one type.
	Homogeneity float64
	// Completeness is 1 when every type lands in one cluster.
	Completeness float64
	// VMeasure is the harmonic mean of homogeneity and completeness.
	VMeasure float64
}

// External computes the complementary metrics over the same input shape
// as ClusterMetrics. Noise is treated as one additional "cluster", as
// is conventional when scoring DBSCAN-family results externally.
func External(clusters [][]netmsg.FieldType, noise []netmsg.FieldType) ExternalMetrics {
	all := make([][]netmsg.FieldType, 0, len(clusters)+1)
	all = append(all, clusters...)
	if len(noise) > 0 {
		all = append(all, noise)
	}
	if len(all) == 0 {
		return ExternalMetrics{}
	}

	// Contingency counts.
	typeTotals := make(map[netmsg.FieldType]float64)
	clusterTotals := make([]float64, len(all))
	cells := make([]map[netmsg.FieldType]float64, len(all))
	var n float64
	for i, c := range all {
		cells[i] = make(map[netmsg.FieldType]float64)
		for _, typ := range c {
			cells[i][typ]++
			clusterTotals[i]++
			typeTotals[typ]++
			n++
		}
	}
	if n < 2 {
		return ExternalMetrics{}
	}

	m := ExternalMetrics{
		AdjustedRand: adjustedRand(cells, clusterTotals, typeTotals, n),
	}
	m.Homogeneity, m.Completeness = homogeneityCompleteness(cells, clusterTotals, typeTotals, n)
	if m.Homogeneity+m.Completeness > 0 {
		m.VMeasure = 2 * m.Homogeneity * m.Completeness / (m.Homogeneity + m.Completeness)
	}
	return m
}

// ExternalResult labels every unique segment of a pipeline result with
// its dominant ground-truth type and computes the external metrics —
// the same input shape EvaluateResult feeds the combinatorial
// statistics. It requires ground-truth dissections on the underlying
// messages.
func ExternalResult(res *core.Result) ExternalMetrics {
	clusters, noise := resultTypeLists(res)
	return External(clusters, noise)
}

// resultTypeLists converts a pipeline result into per-cluster and noise
// ground-truth type lists, the shared input of ClusterMetrics and
// External.
func resultTypeLists(res *core.Result) (clusters [][]netmsg.FieldType, noise []netmsg.FieldType) {
	clusters = make([][]netmsg.FieldType, len(res.Clusters))
	inCluster := make(map[int]bool)
	for i, c := range res.Clusters {
		for _, idx := range c.UniqueIndexes {
			typ, _ := res.Pool.Unique[idx].DominantTrueType()
			clusters[i] = append(clusters[i], typ)
			inCluster[idx] = true
		}
	}
	for idx := range res.Pool.Unique {
		if !inCluster[idx] {
			typ, _ := res.Pool.Unique[idx].DominantTrueType()
			noise = append(noise, typ)
		}
	}
	return clusters, noise
}

func comb2(x float64) float64 { return x * (x - 1) / 2 }

func adjustedRand(cells []map[netmsg.FieldType]float64, clusterTotals []float64, typeTotals map[netmsg.FieldType]float64, n float64) float64 {
	var sumCells, sumClusters, sumTypes float64
	for i := range cells {
		for _, typ := range detmap.SortedKeys(cells[i]) {
			sumCells += comb2(cells[i][typ])
		}
		sumClusters += comb2(clusterTotals[i])
	}
	for _, typ := range detmap.SortedKeys(typeTotals) {
		sumTypes += comb2(typeTotals[typ])
	}
	total := comb2(n)
	if total == 0 {
		return 0
	}
	expected := sumClusters * sumTypes / total
	maxIndex := (sumClusters + sumTypes) / 2
	if maxIndex == expected {
		return 0
	}
	return (sumCells - expected) / (maxIndex - expected)
}

func homogeneityCompleteness(cells []map[netmsg.FieldType]float64, clusterTotals []float64, typeTotals map[netmsg.FieldType]float64, n float64) (hom, comp float64) {
	// Entropies.
	var hTypes, hClusters float64
	for _, typ := range detmap.SortedKeys(typeTotals) {
		p := typeTotals[typ] / n
		hTypes -= p * math.Log(p)
	}
	for _, c := range clusterTotals {
		if c == 0 {
			continue
		}
		p := c / n
		hClusters -= p * math.Log(p)
	}
	// Conditional entropies H(type|cluster) and H(cluster|type).
	var hTGivenC, hCGivenT float64
	for i := range cells {
		for _, typ := range detmap.SortedKeys(cells[i]) {
			cnt := cells[i][typ]
			pJoint := cnt / n
			hTGivenC -= pJoint * math.Log(cnt/clusterTotals[i])
		}
	}
	for _, typ := range detmap.SortedKeys(typeTotals) {
		t := typeTotals[typ]
		for i := range cells {
			cnt := cells[i][typ]
			if cnt == 0 {
				continue
			}
			pJoint := cnt / n
			hCGivenT -= pJoint * math.Log(cnt/t)
		}
	}
	if hTypes == 0 {
		hom = 1
	} else {
		hom = 1 - hTGivenC/hTypes
	}
	if hClusters == 0 {
		comp = 1
	} else {
		comp = 1 - hCGivenT/hClusters
	}
	return hom, comp
}
