package eval

import (
	"math"
	"testing"

	"protoclust/internal/netmsg"
)

func TestExternalPerfect(t *testing.T) {
	m := External([][]netmsg.FieldType{
		{typeA, typeA, typeA},
		{typeB, typeB},
	}, nil)
	if !almost(m.AdjustedRand, 1) {
		t.Errorf("ARI = %v, want 1", m.AdjustedRand)
	}
	if !almost(m.Homogeneity, 1) || !almost(m.Completeness, 1) || !almost(m.VMeasure, 1) {
		t.Errorf("H/C/V = %v/%v/%v, want 1/1/1", m.Homogeneity, m.Completeness, m.VMeasure)
	}
}

func TestExternalOverclassified(t *testing.T) {
	// One type split across two clusters: perfectly homogeneous, not
	// complete.
	m := External([][]netmsg.FieldType{
		{typeA, typeA},
		{typeA, typeA},
		{typeB, typeB},
	}, nil)
	if !almost(m.Homogeneity, 1) {
		t.Errorf("homogeneity = %v, want 1", m.Homogeneity)
	}
	if m.Completeness >= 1 {
		t.Errorf("completeness = %v, want < 1", m.Completeness)
	}
	if m.VMeasure >= 1 || m.VMeasure <= 0 {
		t.Errorf("V = %v, want in (0,1)", m.VMeasure)
	}
	if m.AdjustedRand >= 1 || m.AdjustedRand <= 0 {
		t.Errorf("ARI = %v, want in (0,1)", m.AdjustedRand)
	}
}

func TestExternalUnderclassified(t *testing.T) {
	// Two types merged: complete (each type in one cluster), not
	// homogeneous.
	m := External([][]netmsg.FieldType{
		{typeA, typeA, typeB, typeB},
	}, nil)
	if !almost(m.Completeness, 1) {
		t.Errorf("completeness = %v, want 1", m.Completeness)
	}
	if m.Homogeneity >= 1 {
		t.Errorf("homogeneity = %v, want < 1", m.Homogeneity)
	}
}

func TestExternalRandomIsNearZeroARI(t *testing.T) {
	// A clustering orthogonal to the types: ARI should be near 0.
	m := External([][]netmsg.FieldType{
		{typeA, typeB, typeA, typeB},
		{typeB, typeA, typeB, typeA},
	}, nil)
	if math.Abs(m.AdjustedRand) > 0.2 {
		t.Errorf("ARI = %v, want ≈ 0 for uninformative clustering", m.AdjustedRand)
	}
}

func TestExternalNoiseCountsAsCluster(t *testing.T) {
	withNoise := External([][]netmsg.FieldType{{typeA, typeA}}, []netmsg.FieldType{typeB, typeB})
	// B isolated in the noise bucket: still a perfect partition.
	if !almost(withNoise.AdjustedRand, 1) {
		t.Errorf("ARI with pure noise bucket = %v, want 1", withNoise.AdjustedRand)
	}
}

func TestExternalEmpty(t *testing.T) {
	m := External(nil, nil)
	if m.AdjustedRand != 0 || m.VMeasure != 0 {
		t.Errorf("empty metrics = %+v", m)
	}
	single := External([][]netmsg.FieldType{{typeA}}, nil)
	if single.AdjustedRand != 0 {
		t.Errorf("single-element ARI = %v, want 0", single.AdjustedRand)
	}
}

func TestExternalAgreesWithCombinatorial(t *testing.T) {
	// On the real pipeline, high F¼ must coincide with high ARI.
	res, _ := buildResult(t)
	comb := EvaluateResult(res)
	clusters := make([][]netmsg.FieldType, len(res.Clusters))
	for i, c := range res.Clusters {
		for _, idx := range c.UniqueIndexes {
			typ, _ := res.Pool.Unique[idx].DominantTrueType()
			clusters[i] = append(clusters[i], typ)
		}
	}
	ext := External(clusters, nil)
	// F¼ weights precision four-fold, so a pure-but-overclassified
	// result can carry F¼ ≈ 0.95 with a much lower symmetric ARI; the
	// metrics only have to agree directionally.
	if comb.FScore > 0.9 && ext.AdjustedRand < 0.2 {
		t.Errorf("F¼ = %.2f but ARI = %.2f — metrics disagree", comb.FScore, ext.AdjustedRand)
	}
	if comb.Precision > 0.95 && ext.Homogeneity < 0.8 {
		t.Errorf("precision %.2f but homogeneity %.2f", comb.Precision, ext.Homogeneity)
	}
}
