package eval

import "testing"

func TestRecognitionObserve(t *testing.T) {
	var r Recognition
	r.TotalBytes = 100
	r.Observe("timestamp", "timestamp", 8) // correct
	r.Observe("uint32", "ipv4addr", 4)     // wrong type
	r.Observe("", "chars", 10)             // unscorable template: coverage only
	if r.ClassifiedBytes != 22 {
		t.Errorf("ClassifiedBytes = %d, want 22", r.ClassifiedBytes)
	}
	if r.ScoredBytes != 12 {
		t.Errorf("ScoredBytes = %d, want 12", r.ScoredBytes)
	}
	if r.CorrectBytes != 8 {
		t.Errorf("CorrectBytes = %d, want 8", r.CorrectBytes)
	}
	if got, want := r.TypeAccuracy(), 8.0/12.0; got != want {
		t.Errorf("TypeAccuracy = %v, want %v", got, want)
	}
	if got, want := r.ByteCoverage(), 0.22; got != want {
		t.Errorf("ByteCoverage = %v, want %v", got, want)
	}
}

func TestRecognitionZeroDenominators(t *testing.T) {
	var r Recognition
	if r.TypeAccuracy() != 0 {
		t.Error("TypeAccuracy of empty recognition not 0")
	}
	if r.ByteCoverage() != 0 {
		t.Error("ByteCoverage of empty recognition not 0")
	}
}
