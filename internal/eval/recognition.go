package eval

// Recognition aggregates byte-weighted recognition outcomes of the
// train-on-one-trace / recognize-on-another evaluation (the journal
// extension's Section on type recognition): how many recognized bytes
// carried the template's ground-truth type, and how much of the trace
// the recognized fields cover.
type Recognition struct {
	// CorrectBytes counts scored bytes whose predicted type matched the
	// ground truth.
	CorrectBytes int `json:"correct_bytes"`
	// ScoredBytes counts classified bytes whose template carried a
	// ground-truth type to compare against.
	ScoredBytes int `json:"scored_bytes"`
	// ClassifiedBytes counts all bytes assigned a non-unknown template.
	ClassifiedBytes int `json:"classified_bytes"`
	// TotalBytes is the recognized trace's payload size.
	TotalBytes int `json:"total_bytes"`
}

// Observe records one classified segment: n bytes predicted as
// predicted, with truth as the segment's ground-truth type. A template
// learned without ground truth predicts "" — counted for coverage but
// not for accuracy.
func (r *Recognition) Observe(predicted, truth string, n int) {
	r.ClassifiedBytes += n
	if predicted == "" {
		return
	}
	r.ScoredBytes += n
	if predicted == truth {
		r.CorrectBytes += n
	}
}

// TypeAccuracy is the byte-weighted share of scored bytes whose
// predicted type matched the ground truth.
func (r Recognition) TypeAccuracy() float64 {
	if r.ScoredBytes == 0 {
		return 0
	}
	return float64(r.CorrectBytes) / float64(r.ScoredBytes)
}

// ByteCoverage is the share of trace bytes covered by classified
// (non-unknown) fields.
func (r Recognition) ByteCoverage() float64 {
	if r.TotalBytes == 0 {
		return 0
	}
	return float64(r.ClassifiedBytes) / float64(r.TotalBytes)
}
