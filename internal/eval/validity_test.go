package eval

import (
	"math"
	"testing"

	"protoclust/internal/dbscan"
)

// distOnly strips the RowStreamer fast path from a matrix so the Dist
// fallback loop can be compared against the streaming accumulation.
type distOnly struct{ m dbscan.Matrix }

func (d distOnly) Len() int              { return d.m.Len() }
func (d distOnly) Dist(i, j int) float64 { return d.m.Dist(i, j) }

// q round-trips a distance through the backends' float32 quantization
// so hand-computed expectations match stored values exactly.
func q(v float64) float64 { return float64(dbscan.Quantize(v)) }

// pairScore is the silhouette of one point of a tight pair against the
// far pair: a = 0.1, b = 0.9 after quantization.
func pairScore() float64 { return (q(0.9) - q(0.1)) / q(0.9) }

// twoBlobs builds a 4-point matrix with two tight pairs: intra-pair
// distance 0.1, inter-pair 0.9.
func twoBlobs(t *testing.T) *dbscan.CondensedMatrix {
	t.Helper()
	m, err := dbscan.NewCondensedMatrix(4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			d := 0.9
			if i/2 == j/2 {
				d = 0.1
			}
			m.Set(i, j, d)
		}
	}
	return m
}

func TestSilhouetteSeparatedPairs(t *testing.T) {
	m := twoBlobs(t)
	labels := []int{0, 0, 1, 1}
	// Every point: a = 0.1, b = 0.9, s = (b−a)/b.
	want := pairScore()
	got := Silhouette(m, labels)
	if !almost(got, want) {
		t.Errorf("silhouette = %v, want %v", got, want)
	}
}

func TestSilhouetteStreamerMatchesDistLoop(t *testing.T) {
	m := twoBlobs(t)
	labels := []int{0, 0, 1, 1}
	if s, d := Silhouette(m, labels), Silhouette(distOnly{m}, labels); s != d {
		t.Errorf("streamed = %v, dist loop = %v; want identical", s, d)
	}
}

func TestSilhouetteNoiseExcluded(t *testing.T) {
	m, err := dbscan.NewCondensedMatrix(5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			d := 0.9
			if i/2 == j/2 {
				d = 0.1
			}
			if j == 4 {
				d = 0.5 // noise point at arbitrary distances
			}
			m.Set(i, j, d)
		}
	}
	got := Silhouette(m, []int{0, 0, 1, 1, -1})
	want := pairScore()
	if !almost(got, want) {
		t.Errorf("silhouette with noise = %v, want %v (noise must not shift the score)", got, want)
	}
}

func TestSilhouetteDegenerate(t *testing.T) {
	m := twoBlobs(t)
	cases := []struct {
		name   string
		labels []int
	}{
		{"single cluster", []int{0, 0, 0, 0}},
		{"all noise", []int{-1, -1, -1, -1}},
		{"length mismatch", []int{0, 0}},
	}
	for _, c := range cases {
		if got := Silhouette(m, c.labels); got != 0 {
			t.Errorf("%s: silhouette = %v, want 0", c.name, got)
		}
	}
}

func TestSilhouetteSingletonScoresZero(t *testing.T) {
	// Pair {0,1} plus singleton {2}: the pair's points score normally,
	// the singleton contributes a 0 to the mean.
	m, err := dbscan.NewCondensedMatrix(3)
	if err != nil {
		t.Fatal(err)
	}
	m.Set(0, 1, 0.1)
	m.Set(0, 2, 0.9)
	m.Set(1, 2, 0.9)
	got := Silhouette(m, []int{0, 0, 1})
	want := (pairScore() + pairScore() + 0) / 3
	if !almost(got, want) {
		t.Errorf("silhouette = %v, want %v", got, want)
	}
}

func TestSilhouetteBoundedAndSigned(t *testing.T) {
	// A deliberately wrong labeling (splitting the true pairs) must score
	// negative; any score stays within [-1, 1].
	m := twoBlobs(t)
	got := Silhouette(m, []int{0, 1, 0, 1})
	if got >= 0 {
		t.Errorf("silhouette of mis-labeling = %v, want < 0", got)
	}
	if got < -1 || got > 1 {
		t.Errorf("silhouette = %v outside [-1, 1]", got)
	}
	if math.IsNaN(got) {
		t.Error("silhouette is NaN")
	}
}
