package msgtype

import (
	"errors"
	"testing"

	"protoclust/internal/netmsg"
	"protoclust/internal/protocols"
	"protoclust/internal/segment"
	"protoclust/internal/segment/nemesys"
)

func TestClusterTooFew(t *testing.T) {
	tr := &netmsg.Trace{Messages: []*netmsg.Message{{Data: []byte{1, 2}}}}
	if _, err := Cluster(tr, &nemesys.Segmenter{}, Params{}); !errors.Is(err, ErrTooFewMessages) {
		t.Errorf("err = %v, want ErrTooFewMessages", err)
	}
}

// twoTypeTrace builds messages of two clearly different formats.
func twoTypeTrace(n int) *netmsg.Trace {
	tr := &netmsg.Trace{}
	for i := 0; i < n; i++ {
		var m *netmsg.Message
		if i%2 == 0 {
			// Type A: constant header + small counter.
			m = &netmsg.Message{
				Data: []byte{0xAA, 0xBB, 0xCC, 0xDD, 0, byte(i), 0, byte(i + 1)},
				Fields: []netmsg.Field{
					{Name: "hdr", Offset: 0, Length: 4, Type: netmsg.TypeBytes},
					{Name: "c1", Offset: 4, Length: 2, Type: netmsg.TypeUint16},
					{Name: "c2", Offset: 6, Length: 2, Type: netmsg.TypeUint16},
				},
			}
		} else {
			// Type B: different magic + text.
			m = &netmsg.Message{
				Data: append([]byte{0x11, 0x22}, []byte("hello-world")...),
				Fields: []netmsg.Field{
					{Name: "magic", Offset: 0, Length: 2, Type: netmsg.TypeBytes},
					{Name: "txt", Offset: 2, Length: 11, Type: netmsg.TypeChars},
				},
			}
		}
		tr.Messages = append(tr.Messages, m)
	}
	return tr
}

func TestClusterSeparatesFormats(t *testing.T) {
	tr := twoTypeTrace(40)
	res, err := Cluster(tr, segment.GroundTruth{}, Params{})
	if err != nil {
		t.Fatalf("Cluster: %v", err)
	}
	if len(res.Types) != 2 {
		t.Fatalf("types = %d, want 2", len(res.Types))
	}
	// Each type must be pure: all members share the first byte.
	for ti, group := range res.Types {
		first := group[0].Data[0]
		for _, m := range group {
			if m.Data[0] != first {
				t.Errorf("type %d mixes formats", ti)
			}
		}
	}
	if res.Epsilon <= 0 {
		t.Errorf("epsilon = %v", res.Epsilon)
	}
}

func TestClusterAccountsForAllMessages(t *testing.T) {
	tr := twoTypeTrace(30)
	res, err := Cluster(tr, segment.GroundTruth{}, Params{})
	if err != nil {
		t.Fatal(err)
	}
	total := len(res.Noise)
	for _, g := range res.Types {
		total += len(g)
	}
	if total != len(tr.Messages) {
		t.Errorf("types+noise = %d, want %d", total, len(tr.Messages))
	}
}

func TestClusterFixedEpsilon(t *testing.T) {
	tr := twoTypeTrace(20)
	res, err := Cluster(tr, segment.GroundTruth{}, Params{Epsilon: 0.9, MinSamples: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epsilon != 0.9 {
		t.Errorf("epsilon = %v, want fixed 0.9", res.Epsilon)
	}
	// At near-max epsilon everything merges into one type.
	if len(res.Types) != 1 {
		t.Errorf("types = %d, want 1 at huge epsilon", len(res.Types))
	}
}

func TestClusterOnRealProtocol(t *testing.T) {
	tr, err := protocols.Generate("dns", 80, 1)
	if err != nil {
		t.Fatal(err)
	}
	tr = tr.Deduplicate()
	res, err := Cluster(tr, segment.GroundTruth{}, Params{})
	if err != nil {
		t.Fatalf("Cluster: %v", err)
	}
	if len(res.Types) < 2 {
		t.Errorf("DNS should split into at least query/response types, got %d", len(res.Types))
	}
	// Types should be direction-pure to a large degree.
	pure := 0
	total := 0
	for _, g := range res.Types {
		req := 0
		for _, m := range g {
			if m.IsRequest {
				req++
			}
		}
		major := req
		if len(g)-req > major {
			major = len(g) - req
		}
		pure += major
		total += len(g)
	}
	if total == 0 {
		t.Fatal("no clustered messages")
	}
	if share := float64(pure) / float64(total); share < 0.8 {
		t.Errorf("direction purity = %.2f, want ≥ 0.8", share)
	}
}

func TestMessageDissimilarity(t *testing.T) {
	msg := func(data []byte) *netmsg.Message { return &netmsg.Message{Data: data} }
	segsOf := func(m *netmsg.Message, cuts ...int) []netmsg.Segment {
		return segment.FromBoundaries(m, cuts)
	}
	a := msg([]byte{1, 2, 3, 4})
	b := msg([]byte{1, 2, 3, 4})
	d, err := messageDissimilarity(segsOf(a, 2), segsOf(b, 2), 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("identical messages dissimilarity = %v, want 0", d)
	}

	c := msg([]byte{250, 251, 252, 253})
	d2, err := messageDissimilarity(segsOf(a, 2), segsOf(c, 2), 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if d2 <= 0.5 {
		t.Errorf("opposite messages dissimilarity = %v, want high", d2)
	}

	// Extra unmatched segments count fully.
	long := msg([]byte{1, 2, 3, 4, 9, 9, 9, 9})
	d3, err := messageDissimilarity(segsOf(a, 2), segsOf(long, 2, 4), 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if d3 <= 0 || d3 >= 1 {
		t.Errorf("partial match dissimilarity = %v, want in (0,1)", d3)
	}

	// Empty segment lists.
	if d, _ := messageDissimilarity(nil, nil, 0.3); d != 0 {
		t.Errorf("both empty = %v, want 0", d)
	}
	if d, _ := messageDissimilarity(segsOf(a, 2), nil, 0.3); d != 1 {
		t.Errorf("one empty = %v, want 1", d)
	}
}
