// Package msgtype clusters whole messages into message types, in the
// spirit of NEMETYL (Kleber, van der Heijden, Kargl: "Message Type
// Identification of Binary Network Protocols using Continuous Segment
// Similarity", INFOCOM 2020) — the companion analysis the paper builds
// on and explicitly delegates to ("we do not consider clustering whole
// messages into different message types since previous work ... already
// achieves this", Section II).
//
// Messages are compared by the Canberra dissimilarity of their aligned
// segment sequences: segments are matched greedily in order, unmatched
// tails are penalized, and the resulting message dissimilarity matrix
// is clustered with the same auto-configured DBSCAN used for field
// clustering. Splitting a trace by message type before field-type
// clustering sharpens per-type value distributions.
package msgtype

import (
	"errors"
	"fmt"

	"protoclust/internal/canberra"
	"protoclust/internal/dbscan"
	"protoclust/internal/netmsg"
	"protoclust/internal/segment"
	"protoclust/internal/vecmath"
)

// Params configures message-type clustering.
type Params struct {
	// Penalty is the Canberra length-mismatch penalty for segment
	// comparison; 0 means canberra.DefaultPenalty.
	Penalty float64
	// Epsilon overrides the automatic ε selection when positive.
	Epsilon float64
	// MinSamples overrides DBSCAN's min_samples when positive.
	MinSamples int
}

// Result is a message-type clustering outcome.
type Result struct {
	// Types maps each type ID to its member messages.
	Types [][]*netmsg.Message
	// Noise holds messages assigned to no type.
	Noise []*netmsg.Message
	// Epsilon is the DBSCAN radius used.
	Epsilon float64
}

// ErrTooFewMessages is returned for traces below the minimum population.
var ErrTooFewMessages = errors.New("msgtype: need at least three messages")

// Cluster groups the trace's messages into message types using the
// given segmenter for the per-message segment sequences.
func Cluster(tr *netmsg.Trace, seg segment.Segmenter, p Params) (*Result, error) {
	msgs := tr.Messages
	if len(msgs) < 3 {
		return nil, fmt.Errorf("%w (have %d)", ErrTooFewMessages, len(msgs))
	}
	if p.Penalty <= 0 {
		p.Penalty = canberra.DefaultPenalty
	}

	segs, err := seg.Segment(tr)
	if err != nil {
		return nil, fmt.Errorf("msgtype: segmentation: %w", err)
	}
	perMsg := make(map[*netmsg.Message][]netmsg.Segment, len(msgs))
	for _, s := range segs {
		perMsg[s.Msg] = append(perMsg[s.Msg], s)
	}

	n := len(msgs)
	matrix, err := dbscan.NewDenseMatrix(n)
	if err != nil {
		return nil, fmt.Errorf("msgtype: matrix: %w", err)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d, err := messageDissimilarity(perMsg[msgs[i]], perMsg[msgs[j]], p.Penalty)
			if err != nil {
				return nil, fmt.Errorf("msgtype: pair (%d,%d): %w", i, j, err)
			}
			matrix.Set(i, j, d)
		}
	}

	eps := p.Epsilon
	if eps <= 0 {
		eps = autoEpsilon(matrix)
	}
	minPts := p.MinSamples
	if minPts <= 0 {
		minPts = 3
	}
	res, err := dbscan.Cluster(matrix, eps, minPts)
	if err != nil {
		return nil, fmt.Errorf("msgtype: dbscan: %w", err)
	}
	clusters, noise := res.Clusters()

	out := &Result{Epsilon: eps}
	for _, c := range clusters {
		group := make([]*netmsg.Message, 0, len(c))
		for _, idx := range c {
			group = append(group, msgs[idx])
		}
		out.Types = append(out.Types, group)
	}
	for _, idx := range noise {
		out.Noise = append(out.Noise, msgs[idx])
	}
	return out, nil
}

// messageDissimilarity compares two messages as sequences of segments:
// corresponding segments (in order) contribute their Canberra
// dissimilarity weighted by length; unmatched trailing segments count
// as fully dissimilar.
func messageDissimilarity(a, b []netmsg.Segment, penalty float64) (float64, error) {
	if len(a) == 0 || len(b) == 0 {
		if len(a) == len(b) {
			return 0, nil
		}
		return 1, nil
	}
	short, long := a, b
	if len(short) > len(long) {
		short, long = long, short
	}
	var weighted float64
	var weight float64
	for i, s := range short {
		t := long[i]
		d, err := canberra.DissimilarityPenalty(s.Bytes(), t.Bytes(), penalty)
		if err != nil {
			return 0, err
		}
		w := float64(s.Length + t.Length)
		weighted += d * w
		weight += w
	}
	for _, t := range long[len(short):] {
		w := float64(t.Length)
		weighted += 1 * w
		weight += w
	}
	if weight == 0 {
		return 0, nil
	}
	return weighted / weight, nil
}

// autoEpsilon derives a DBSCAN radius from the 1-NN distance
// distribution of the message matrix: the knee-free, robust variant
// (60th percentile of nearest-neighbor distances) — message-type
// structure is much coarser than field-type structure, so the full
// Algorithm 1 machinery is unnecessary here.
func autoEpsilon(m *dbscan.DenseMatrix) float64 {
	n := m.Len()
	nn := make([]float64, n)
	for i := 0; i < n; i++ {
		best := 2.0
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if d := m.Dist(i, j); d < best {
				best = d
			}
		}
		nn[i] = best
	}
	eps := vecmath.Percentile(nn, 60)
	if eps <= 0 {
		eps = 0.05
	}
	return eps
}
