# protoclust build and reproduction targets.

GO ?= go

.PHONY: all build test test-short test-noasm test-race test-service test-oracle golden-check golden-update vet lint bench bench-json bench-scaling smoke-tiled smoke-distributed smoke-sweep smoke-format eval fuzz serve clean

all: build lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Full lint gate: go vet, the nine domain analyzers (cmd/protoclustvet:
# ctxflow, determinism, detflow, errdiscard, floatcmp, goroleak,
# idxoverflow, mutexhold, nanguard — see docs/linting.md), and
# staticcheck when it is on PATH. vet and protoclustvet are stdlib-only
# and always run; staticcheck needs a network install, so it is skipped
# (loudly) when absent.
lint: vet
	$(GO) run ./cmd/protoclustvet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; skipping (CI installs and enforces it)"; \
	fi

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# The assembly-free build: the noasm tag compiles out the SIMD kernels,
# so this shard proves the scalar fallback alone passes the full suite
# (and that no code path depends on an arch kernel being present).
test-noasm:
	$(GO) test -tags noasm ./...

# Race detector over the concurrent matrix build, k-NN selection, and
# the rest of the pipeline.
test-race:
	$(GO) test -race -short ./...

# Race detector over the analysis service and the distribution
# subsystem: worker pool, cancellation, cache, HTTP lifecycle, shard
# queue/lease lifecycle, the durable job log, and the configuration-
# sweep harness (shared-matrix fan-out; the full suites, not just
# -short).
test-service:
	$(GO) test -race ./internal/service/ ./cmd/protoclustd/ ./internal/shard/ ./internal/jobstore/ ./internal/sweep/

# Differential tests of the production pipeline against the
# obviously-correct reference implementations in internal/oracle, under
# the race detector. See docs/testing.md.
test-oracle:
	$(GO) test -race ./internal/oracle/ ./internal/dbscan/ ./internal/ecdf/ ./internal/kneedle/ ./internal/vecmath/ ./internal/core/

# Golden-trace regression check: re-run the pipeline on the seeded
# trace set and compare ε, k, cluster counts, and quality metrics
# against testdata/golden/. Runs twice — once on the default matrix
# backend and once forced through the bounded-memory tiled backend,
# against the same records, since every backend must produce
# bit-identical labels. See docs/testing.md.
golden-check:
	$(GO) run ./cmd/goldencheck -format
	$(GO) run ./cmd/goldencheck -backend tiled

# Regenerate the golden records after an intentional pipeline change;
# review the diff before committing it.
golden-update:
	$(GO) run ./cmd/goldencheck -update -format

# Run the analysis daemon locally. See docs/service.md for the API and
# a curl walkthrough.
serve:
	$(GO) run ./cmd/protoclustd -addr :8077

# Regenerates every benchmark, including one run per paper table/figure.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerates the perf-trajectory artifact for the dissimilarity hot
# path: per-kernel shard (every compiled SIMD kernel vs scalar and the
# PR-1 baseline), kernel, matrix build, and k-NN table per backend
# (dense / condensed / tiled) at n = 500/2000/8000, plus the GOMAXPROCS
# scaling sweep. See docs/tuning.md § Performance.
bench-json:
	$(GO) run ./cmd/benchperf -out BENCH_6.json

# Quick GOMAXPROCS cores-vs-throughput sweep only (matrix build, k-NN
# table, tiled pass). Non-blocking CI smoke; meaningful numbers need a
# multicore host.
bench-scaling:
	$(GO) run ./cmd/benchperf -scaling-only -scaling-n 500 -out /dev/null

# End-to-end smoke of the tiled out-of-core backend: cluster an n=5000
# synthetic pool under a deliberately tiny tile budget (with spill) and
# cross-check the labels bit-for-bit against the condensed backend,
# under a GOMEMLIMIT that a resident matrix of that size would respect
# anyway but a leaking tile cache would not.
smoke-tiled:
	GOMEMLIMIT=768MiB $(GO) run ./cmd/benchperf -e2e-n 5000 -e2e-budget 4194304 -out /dev/null

# End-to-end smoke of the distributed coordinator/worker path: builds
# the protoclustd and protoclust-worker binaries, launches one
# coordinator (durable jobstore, 2s shard leases) plus two workers,
# SIGKILLs one worker while it holds a lease mid-run, and requires that
# the surviving worker steals the expired lease and the job's report is
# byte-identical to a single-process run. See docs/service.md.
smoke-distributed:
	$(GO) run ./cmd/smokedist

# End-to-end smoke of the configuration-sweep harness: a 24-config grid
# (2 segmenters × 2 clusterers × 3 k's × 2 ε-sources, with ensembles)
# over one golden trace. Requires zero failed configs, exactly one
# matrix build per segmenter, the paper's reference configuration on
# the Pareto front, and a byte-identical report on a second run.
smoke-sweep:
	$(GO) run ./cmd/smokesweep

# End-to-end smoke of field-type recognition: templates trained on one
# golden trace (seed 1) recognize a second trace (seed 2) per protocol.
# Requires per-protocol type-accuracy and byte-coverage floors, a
# template save/load round trip, and byte-identical schema JSON across
# two independent runs.
smoke-format:
	$(GO) run ./cmd/smokeformat

# Regenerates Tables I/II, Figures 2/3, and the coverage comparison.
eval:
	$(GO) run ./cmd/evaltables -all

# Short fuzzing pass over the hardened parsers and segmenters.
fuzz:
	$(GO) test -run XXX -fuzz FuzzReader -fuzztime 10s ./internal/pcap/
	$(GO) test -run XXX -fuzz FuzzExtractPayload -fuzztime 10s ./internal/pcap/
	$(GO) test -run XXX -fuzz FuzzSegmentMessage -fuzztime 10s ./internal/segment/nemesys/
	$(GO) test -run XXX -fuzz FuzzSegment -fuzztime 10s ./internal/segment/csp/
	$(GO) test -run XXX -fuzz FuzzSegment -fuzztime 10s ./internal/segment/netzob/
	$(GO) test -run XXX -fuzz 'FuzzDissimilarity$$' -fuzztime 10s ./internal/canberra/
	$(GO) test -run XXX -fuzz FuzzKernelDifferential -fuzztime 10s ./internal/canberra/
	$(GO) test -run XXX -fuzz FuzzKernelCross -fuzztime 10s ./internal/canberra/
	$(GO) test -run XXX -fuzz FuzzFind -fuzztime 10s ./internal/kneedle/

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
