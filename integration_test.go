package protoclust_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"protoclust"
	"protoclust/internal/pcap"
)

// TestIntegrationGrid exercises the full public pipeline across every
// protocol × segmenter combination on small traces, checking structural
// invariants rather than exact quality numbers:
//
//   - the analysis completes or fails with ErrBudgetExceeded,
//   - every produced pseudo type has members and distinct values,
//   - coverage is a valid ratio,
//   - repeated runs are bit-for-bit deterministic.
func TestIntegrationGrid(t *testing.T) {
	segmenters := []string{
		protoclust.SegmenterTruth,
		protoclust.SegmenterNEMESYS,
		protoclust.SegmenterNetzob,
		protoclust.SegmenterCSP,
	}
	for _, proto := range protoclust.Protocols() {
		for _, seg := range segmenters {
			proto, seg := proto, seg
			t.Run(proto+"/"+seg, func(t *testing.T) {
				t.Parallel()
				tr, err := protoclust.GenerateTrace(proto, 60, 3)
				if err != nil {
					t.Fatal(err)
				}
				o := protoclust.DefaultOptions()
				o.Segmenter = seg
				a, err := protoclust.Analyze(tr, o)
				if errors.Is(err, protoclust.ErrBudgetExceeded) {
					t.Skipf("segmenter budget exceeded (accepted outcome): %v", err)
				}
				if err != nil {
					t.Fatalf("Analyze: %v", err)
				}
				for _, pt := range a.PseudoTypes() {
					if len(pt.Segments) == 0 {
						t.Errorf("pseudo type %d has no segments", pt.ID)
					}
					if len(pt.UniqueValues) == 0 {
						t.Errorf("pseudo type %d has no values", pt.ID)
					}
					if len(pt.UniqueValues) > len(pt.Segments) {
						t.Errorf("pseudo type %d: more values (%d) than segments (%d)",
							pt.ID, len(pt.UniqueValues), len(pt.Segments))
					}
				}
				if cov := a.Coverage(); cov < 0 || cov > 1 {
					t.Errorf("coverage = %v", cov)
				}

				// Determinism.
				b, err := protoclust.Analyze(tr, o)
				if err != nil {
					t.Fatalf("second Analyze: %v", err)
				}
				if a.Epsilon() != b.Epsilon() {
					t.Errorf("epsilon differs across runs: %v vs %v", a.Epsilon(), b.Epsilon())
				}
				if len(a.PseudoTypes()) != len(b.PseudoTypes()) {
					t.Errorf("cluster count differs across runs")
				}
			})
		}
	}
}

// TestIntegrationPCAPRoundTrip drives the full path a real user takes:
// generate a trace, encapsulate it into a pcap, read it back via the
// public pcap API, and cluster the recovered payloads.
func TestIntegrationPCAPRoundTrip(t *testing.T) {
	tr, err := protoclust.GenerateTrace("dns", 120, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := pcap.NewWriter(&buf, pcap.LinkTypeEthernet)
	for i, m := range tr.Messages {
		frame, err := pcap.BuildUDPFrame(net.IPv4(10, 9, 0, 1), net.IPv4(10, 9, 0, 2), uint16(1024+i), 53, m.Data)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WritePacket(&pcap.Packet{Timestamp: time.Unix(int64(i), 0), Data: frame}); err != nil {
			t.Fatal(err)
		}
	}

	got, err := protoclust.ReadPCAP(&buf, func(src, dst string, payload []byte) bool {
		return strings.HasSuffix(dst, ":53") || strings.HasSuffix(src, ":53")
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Messages) != len(tr.Messages) {
		t.Fatalf("recovered %d of %d messages", len(got.Messages), len(tr.Messages))
	}
	for i := range got.Messages {
		if !bytes.Equal(got.Messages[i].Data, tr.Messages[i].Data) {
			t.Fatalf("payload %d corrupted through pcap round trip", i)
		}
	}

	a, err := protoclust.Analyze(got, protoclust.DefaultOptions())
	if err != nil {
		t.Fatalf("Analyze on recovered trace: %v", err)
	}
	if len(a.PseudoTypes()) == 0 {
		t.Error("no pseudo types from pcap-recovered trace")
	}
}

// TestIntegrationMessageTypeThenFieldType drives the two-stage analysis
// the msgtype package enables: split by message type first, then
// cluster field types per type, and verify each stage's output feeds
// the next.
func TestIntegrationMessageTypeThenFieldType(t *testing.T) {
	tr, err := protoclust.GenerateTrace("dns", 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	o := protoclust.DefaultOptions()
	o.Segmenter = protoclust.SegmenterTruth
	mt, err := protoclust.ClusterMessageTypes(tr, o)
	if err != nil {
		t.Fatal(err)
	}
	analyzed := 0
	for _, group := range mt.Types {
		if len(group) < 20 {
			continue
		}
		sub := &protoclust.Trace{Protocol: "dns", Messages: group}
		a, err := protoclust.Analyze(sub, o)
		if err != nil {
			t.Errorf("per-type analysis: %v", err)
			continue
		}
		analyzed++
		m := a.Evaluate()
		if m.Precision < 0.5 {
			t.Errorf("per-type precision = %.2f suspiciously low", m.Precision)
		}
	}
	if analyzed == 0 {
		t.Error("no message type was large enough to analyze")
	}
}

// TestIntegrationSemanticsAndValueModels drives the two Section V
// extensions end to end on one analysis.
func TestIntegrationSemanticsAndValueModels(t *testing.T) {
	tr, err := protoclust.GenerateTrace("dhcp", 200, 9)
	if err != nil {
		t.Fatal(err)
	}
	o := protoclust.DefaultOptions()
	o.Segmenter = protoclust.SegmenterTruth
	a, err := protoclust.Analyze(tr, o)
	if err != nil {
		t.Fatal(err)
	}
	ds := a.DeduceSemantics()
	if len(ds) != len(a.PseudoTypes()) {
		t.Fatalf("deductions %d != clusters %d", len(ds), len(a.PseudoTypes()))
	}
	for _, pt := range a.PseudoTypes() {
		m, err := pt.TrainValueModel()
		if err != nil {
			t.Errorf("TrainValueModel on type %d: %v", pt.ID, err)
			continue
		}
		for _, v := range pt.UniqueValues[:min(3, len(pt.UniqueValues))] {
			if !m.Seen(v) {
				t.Errorf("type %d: training value not Seen", pt.ID)
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestIntegrationTruthSidecar drives the external-evaluation path:
// encapsulate a generated trace into pcap, serialize its ground truth
// in the tracegen sidecar format, read both back, and verify Evaluate
// works on the reconstructed trace.
func TestIntegrationTruthSidecar(t *testing.T) {
	orig, err := protoclust.GenerateTrace("ntp", 80, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Pcap round trip.
	var pcapBuf bytes.Buffer
	w := pcap.NewWriter(&pcapBuf, pcap.LinkTypeEthernet)
	for i, m := range orig.Messages {
		frame, err := pcap.BuildUDPFrame(net.IPv4(10, 0, 0, 1), net.IPv4(10, 0, 0, 2), uint16(2000+i), 123, m.Data)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WritePacket(&pcap.Packet{Timestamp: m.Timestamp, Data: frame}); err != nil {
			t.Fatal(err)
		}
	}
	loaded, err := protoclust.ReadPCAP(&pcapBuf, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Sidecar in the tracegen format.
	type tf struct {
		Name   string `json:"name"`
		Offset int    `json:"offset"`
		Length int    `json:"length"`
		Type   string `json:"type"`
	}
	type tm struct {
		Index  int    `json:"index"`
		Src    string `json:"src"`
		Dst    string `json:"dst"`
		Fields []tf   `json:"fields"`
	}
	var truth []tm
	for i, m := range orig.Messages {
		e := tm{Index: i, Src: m.SrcAddr, Dst: m.DstAddr}
		for _, f := range m.Fields {
			e.Fields = append(e.Fields, tf{Name: f.Name, Offset: f.Offset, Length: f.Length, Type: string(f.Type)})
		}
		truth = append(truth, e)
	}
	raw, err := json.Marshal(truth)
	if err != nil {
		t.Fatal(err)
	}
	if err := protoclust.AttachTruth(loaded, bytes.NewReader(raw)); err != nil {
		t.Fatalf("AttachTruth: %v", err)
	}
	// Metadata restored from the sidecar.
	if loaded.Messages[0].SrcAddr != orig.Messages[0].SrcAddr {
		t.Errorf("SrcAddr = %q, want %q", loaded.Messages[0].SrcAddr, orig.Messages[0].SrcAddr)
	}

	o := protoclust.DefaultOptions()
	o.Segmenter = protoclust.SegmenterTruth
	a, err := protoclust.Analyze(loaded, o)
	if err != nil {
		t.Fatalf("Analyze on reconstructed trace: %v", err)
	}
	m := a.Evaluate()
	if m.Precision < 0.95 {
		t.Errorf("reconstructed-trace precision = %.2f, want ≥ 0.95", m.Precision)
	}
}

// TestAttachTruthErrors covers the sidecar failure modes.
func TestAttachTruthErrors(t *testing.T) {
	tr, err := protoclust.GenerateTrace("ntp", 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := protoclust.AttachTruth(tr, bytes.NewReader([]byte("not json"))); err == nil {
		t.Error("garbage json should error")
	}
	if err := protoclust.AttachTruth(tr, bytes.NewReader([]byte("[]"))); err == nil {
		t.Error("count mismatch should error")
	}
	bad := []byte(`[{"index":0,"fields":[{"name":"x","offset":0,"length":1,"type":"uint8"}]},{"index":1,"fields":[]},{"index":2,"fields":[]}]`)
	if err := protoclust.AttachTruth(tr, bytes.NewReader(bad)); err == nil {
		t.Error("non-tiling truth should error")
	}
}
