package main

import (
	"strings"
	"testing"
)

func TestRunNothingSelected(t *testing.T) {
	if err := run(nil, &strings.Builder{}); err == nil {
		t.Error("no selection should error")
	}
}

func TestRunFigure2CSV(t *testing.T) {
	if testing.Short() {
		t.Skip("generates the NTP-1000 trace")
	}
	var sb strings.Builder
	if err := run([]string{"-figure", "2"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "dissimilarity,ecdf,smoothed") {
		t.Error("CSV header missing")
	}
	if !strings.Contains(out, "# Figure 2") {
		t.Error("comment header missing")
	}
}

func TestRunFigure2SVG(t *testing.T) {
	if testing.Short() {
		t.Skip("generates the NTP-1000 trace")
	}
	var sb strings.Builder
	if err := run([]string{"-figure", "2", "-svg"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(sb.String(), "<svg") {
		t.Error("SVG output missing")
	}
}

func TestRunFigure3(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-figure", "3"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(sb.String(), "NTP timestamp A") {
		t.Error("Figure 3 output missing")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}, &strings.Builder{}); err == nil {
		t.Error("unknown flag should error")
	}
}

func TestRunRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the seed sweep")
	}
	var sb strings.Builder
	if err := run([]string{"-robustness"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "Robustness") || !strings.Contains(out, "ntp") {
		t.Errorf("robustness output incomplete:\n%s", out)
	}
}

func TestRunTable1CSV(t *testing.T) {
	if testing.Short() {
		t.Skip("generates 1000-message traces")
	}
	var sb strings.Builder
	if err := run([]string{"-table", "1", "-csv"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(sb.String(), "protocol,messages,fields") {
		t.Error("CSV header missing")
	}
}
