// Command evaltables regenerates the paper's evaluation artifacts:
// Table I, Table II, the Figure 2 data series, the Figure 3
// demonstration, and the Section IV-D coverage comparison.
//
// Usage:
//
//	evaltables -table 1            # Table I (ground-truth segments)
//	evaltables -table 2            # Table II (heuristic segmenters)
//	evaltables -figure 2 > fig2.csv
//	evaltables -figure 3
//	evaltables -coverage           # clustering vs. FieldHunter
//	evaltables -all
//
// Table II runs all three heuristic segmenters over all traces and
// takes a few minutes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"protoclust/internal/experiments"
	"protoclust/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "evaltables:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("evaltables", flag.ContinueOnError)
	var (
		table    = fs.Int("table", 0, "regenerate table 1 or 2")
		figure   = fs.Int("figure", 0, "regenerate figure 2 or 3")
		svg      = fs.Bool("svg", false, "with -figure 2: emit SVG instead of CSV")
		asCSV    = fs.Bool("csv", false, "emit tables/coverage as CSV instead of text")
		coverage = fs.Bool("coverage", false, "regenerate the coverage comparison")
		robust   = fs.Bool("robustness", false, "seed sweep: Table I configuration across 5 generator seeds (100-message traces)")
		all      = fs.Bool("all", false, "regenerate everything")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	ran := false
	if *all || *table == 1 {
		ran = true
		rows, err := experiments.Table1()
		if err != nil {
			return err
		}
		write := report.WriteTable1
		if *asCSV {
			write = report.WriteTable1CSV
		}
		if err := write(stdout, rows); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(stdout); err != nil {
			return err
		}
	}
	if *all || *table == 2 {
		ran = true
		rows, err := experiments.Table2()
		if err != nil {
			return err
		}
		write := report.WriteTable2
		if *asCSV {
			write = report.WriteTable2CSV
		}
		if err := write(stdout, rows); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(stdout); err != nil {
			return err
		}
	}
	if *all || *figure == 2 {
		ran = true
		data, err := experiments.Figure2()
		if err != nil {
			return err
		}
		if *svg {
			if err := report.WriteFigure2SVG(stdout, data); err != nil {
				return err
			}
		} else if err := report.WriteFigure2CSV(stdout, data); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(stdout); err != nil {
			return err
		}
	}
	if *all || *figure == 3 {
		ran = true
		examples, err := experiments.Figure3(3)
		if err != nil {
			return err
		}
		if err := report.WriteFigure3(stdout, examples); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(stdout); err != nil {
			return err
		}
	}
	if *all || *coverage {
		ran = true
		rows, err := experiments.CoverageComparison()
		if err != nil {
			return err
		}
		write := report.WriteCoverage
		if *asCSV {
			write = report.WriteCoverageCSV
		}
		if err := write(stdout, rows); err != nil {
			return err
		}
	}
	if *all || *robust {
		ran = true
		seeds := []int64{1, 2, 3, 4, 5}
		var rows []experiments.SeedSweepRow
		for _, proto := range []string{"dhcp", "dns", "nbns", "ntp", "smb", "awdl"} {
			row, err := experiments.SeedSweep(proto, 100, seeds)
			if err != nil {
				return err
			}
			rows = append(rows, row)
		}
		if err := report.WriteSeedSweep(stdout, rows); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(stdout); err != nil {
			return err
		}
	}
	if !ran {
		fs.Usage()
		return fmt.Errorf("nothing selected; use -table, -figure, -coverage, or -all")
	}
	return nil
}
