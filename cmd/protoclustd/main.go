// Command protoclustd serves protocol field-type clustering as a
// long-running HTTP/JSON service: clients submit trace-analysis jobs
// (built-in generated traces or uploaded pcap captures), poll their
// status, fetch results, and cancel runs. Jobs execute on a bounded
// worker pool with per-job deadlines; identical submissions are served
// from a content-addressed result cache.
//
// Usage:
//
//	protoclustd -addr :8077 -workers 4 -default-timeout 2m -cache-dir /var/cache/protoclust
//
// See docs/service.md for the API reference and a curl walkthrough.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"protoclust/internal/service"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "protoclustd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("protoclustd", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8077", "listen address")
		workers      = fs.Int("workers", 2, "concurrent analysis workers")
		queueSize    = fs.Int("queue", 64, "max queued jobs before submits are rejected with 429")
		defTimeout   = fs.Duration("default-timeout", 5*time.Minute, "per-job deadline for jobs without their own (0 = unbounded)")
		grace        = fs.Duration("grace", 10*time.Second, "shutdown drain period for running jobs")
		cacheEntries = fs.Int("cache-entries", 128, "in-memory result cache entries")
		cacheDir     = fs.String("cache-dir", "", "directory for the result-cache disk spill (empty = memory only)")
		spillDir     = fs.String("spill-dir", "", "scratch directory for the tiled matrix backend (default: <cache-dir>/tiles)")
		verbose      = fs.Bool("v", false, "debug-level logging")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	svc := service.New(service.Config{
		Workers:        *workers,
		QueueSize:      *queueSize,
		DefaultTimeout: *defTimeout,
		CacheEntries:   *cacheEntries,
		CacheDir:       *cacheDir,
		SpillDir:       *spillDir,
		Logger:         logger,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr, "workers", *workers, "queue", *queueSize)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		// Listen failed outright; stop the idle worker pool before
		// reporting.
		stopCtx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		// Best-effort drain; the listen error is what gets reported.
		_ = svc.Shutdown(stopCtx)
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting connections, then drain running
	// jobs for up to the grace period; queued jobs fail retryable.
	logger.Info("signal received; shutting down", "grace", *grace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("http shutdown", "err", err)
	}
	if err := svc.Shutdown(shutdownCtx); err != nil {
		return err
	}
	logger.Info("shutdown complete")
	return nil
}
