// Command protoclustd serves protocol field-type clustering as a
// long-running HTTP/JSON service: clients submit trace-analysis jobs
// (built-in generated traces or uploaded pcap captures), poll their
// status, fetch results, and cancel runs. Jobs execute on a bounded
// worker pool with per-job deadlines; identical submissions are served
// from a content-addressed result cache.
//
// Usage:
//
//	protoclustd -addr :8077 -workers 4 -default-timeout 2m -cache-dir /var/cache/protoclust
//
// With -jobstore the queue is durable: accepted jobs survive restarts
// and crashes and resume on the next start. With -distributed the
// daemon becomes a coordinator that shards the O(n²) matrix builds to
// stateless protoclust-worker processes and assembles their results.
//
// See docs/service.md for the API reference and a curl walkthrough.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"protoclust/internal/jobstore"
	"protoclust/internal/service"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "protoclustd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("protoclustd", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8077", "listen address")
		workers      = fs.Int("workers", 2, "concurrent analysis workers")
		queueSize    = fs.Int("queue", 64, "max queued jobs before submits are rejected with 429")
		defTimeout   = fs.Duration("default-timeout", 5*time.Minute, "per-job deadline for jobs without their own (0 = unbounded)")
		grace        = fs.Duration("grace", 10*time.Second, "shutdown drain period for running jobs")
		cacheEntries = fs.Int("cache-entries", 128, "in-memory result cache entries")
		cacheDir     = fs.String("cache-dir", "", "directory for the result-cache disk spill (empty = memory only)")
		spillDir     = fs.String("spill-dir", "", "scratch directory for the tiled matrix backend (default: <cache-dir>/tiles)")
		jobstorePath = fs.String("jobstore", "", "path of the persistent job log; queued jobs survive restarts (empty = memory only)")
		distributed  = fs.Bool("distributed", false, "shard matrix builds to protoclust-worker processes instead of computing in-process")
		leaseTTL     = fs.Duration("lease-ttl", 0, "shard lease duration in distributed mode (0 = 30s default)")
		shardTiles   = fs.Int("shard-tiles", 0, "64x64 tiles per leased shard (0 = 16 default)")
		distMin      = fs.Int("distribute-min", 0, "minimum unique-segment pool size to distribute; smaller pools compute locally")
		verbose      = fs.Bool("v", false, "debug-level logging")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	var store *jobstore.Store
	if *jobstorePath != "" {
		var err error
		store, err = jobstore.Open(*jobstorePath)
		if err != nil {
			return err
		}
		defer func() {
			// Close after Shutdown has appended the final records; a close
			// error at exit has nothing left to corrupt (appends fsync).
			_ = store.Close()
		}()
		logger.Info("job store open", "path", store.Path())
	}

	svc := service.New(service.Config{
		Workers:        *workers,
		QueueSize:      *queueSize,
		DefaultTimeout: *defTimeout,
		CacheEntries:   *cacheEntries,
		CacheDir:       *cacheDir,
		SpillDir:       *spillDir,
		JobStore:       store,
		Distributed:    *distributed,
		LeaseTTL:       *leaseTTL,
		TilesPerShard:  *shardTiles,
		DistributeMin:  *distMin,
		Logger:         logger,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	//lint:ignore goroleak the listener goroutine ends when srv.ListenAndServe returns, which srv.Shutdown below forces during the signal-driven teardown; errc is buffered so the send never blocks
	go func() {
		logger.Info("listening", "addr", *addr, "workers", *workers, "queue", *queueSize)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		// Listen failed outright; stop the idle worker pool before
		// reporting.
		stopCtx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		// Best-effort drain; the listen error is what gets reported.
		_ = svc.Shutdown(stopCtx)
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting connections, then drain running
	// jobs for up to the grace period; queued jobs fail retryable.
	logger.Info("signal received; shutting down", "grace", *grace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("http shutdown", "err", err)
	}
	if err := svc.Shutdown(shutdownCtx); err != nil {
		return err
	}
	logger.Info("shutdown complete")
	return nil
}
