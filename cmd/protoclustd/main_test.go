package main

import (
	"strings"
	"testing"
)

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("unknown flag should error")
	}
}

func TestRunBadAddr(t *testing.T) {
	err := run([]string{"-addr", "256.256.256.256:99999"})
	if err == nil {
		t.Fatal("unbindable address should error")
	}
	if !strings.Contains(err.Error(), "listen") {
		t.Errorf("err = %v, want a listen error", err)
	}
}
