// Command smokesweep is the end-to-end smoke test of the
// configuration-sweep harness. It fans a small grid (2 segmenters ×
// 2 clusterers × 3 k-settings × 2 ε-sources = 24 configurations, with
// co-association ensembles) over one golden generated trace and
// requires that:
//
//   - every configuration reaches a terminal status and none fails,
//   - the dissimilarity matrix is built exactly once per segmenter
//     (the shared-prefix cache-reuse invariant),
//   - the paper's reference configuration (truth segmenter, DBSCAN,
//     auto k, knee ε) sits on the Pareto front,
//   - a second run produces a byte-identical JSON report (the
//     determinism contract), including the ensemble labels hash.
//
// It exits 0 on success and 1 with a diagnostic on any failure, so it
// can gate CI directly (`make smoke-sweep`).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"protoclust"
	"protoclust/internal/sweep"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "smokesweep: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("smokesweep: PASS")
}

func run() error {
	var (
		proto = flag.String("proto", "ntp", "golden trace protocol")
		n     = flag.Int("n", 50, "trace size")
		seed  = flag.Int64("seed", 1, "trace seed")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	tr, err := protoclust.GenerateTrace(*proto, *n, *seed)
	if err != nil {
		return err
	}
	opts := sweep.Options{
		Grid: sweep.Grid{
			Segmenters: []string{protoclust.SegmenterTruth, protoclust.SegmenterNEMESYS},
			Clusterers: []string{"dbscan", "optics"},
			Ks:         []int{0, 2, 3},
			EpsSources: []sweep.EpsSource{
				{Mode: sweep.EpsKnee},
				{Mode: sweep.EpsQuantile, Quantile: 0.5},
			},
		},
		Base:     protoclust.DefaultOptions(),
		Ensemble: true,
	}

	rep, err := sweep.Run(ctx, tr, opts)
	if err != nil {
		return err
	}
	if rep.Total != 24 {
		return fmt.Errorf("grid produced %d configurations, want 24", rep.Total)
	}
	if rep.Failed != 0 {
		return fmt.Errorf("%d configuration(s) failed; first statuses: %s", rep.Failed, failureSummary(rep))
	}
	if rep.MatrixBuilds != 2 {
		return fmt.Errorf("matrix built %d times, want 2 (once per segmenter)", rep.MatrixBuilds)
	}
	if len(rep.Pareto) == 0 {
		return fmt.Errorf("Pareto front is empty")
	}
	// The paper's reference configuration must be non-dominated on its
	// own golden trace; a harness or scoring regression knocks it off.
	ref := "truth/dbscan/k=auto/knee"
	onFront := false
	for _, i := range rep.Pareto {
		if rep.Configs[i].Config.Label() == ref {
			onFront = true
			break
		}
	}
	if !onFront {
		return fmt.Errorf("reference configuration %s not on the Pareto front %v", ref, paretoLabels(rep))
	}
	if len(rep.Ensembles) != 2 {
		return fmt.Errorf("ensemble voting produced %d results, want 2", len(rep.Ensembles))
	}

	first, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	rep2, err := sweep.Run(ctx, tr, opts)
	if err != nil {
		return fmt.Errorf("second run: %w", err)
	}
	second, err := json.Marshal(rep2)
	if err != nil {
		return err
	}
	if !bytes.Equal(first, second) {
		return fmt.Errorf("sweep report is not deterministic: runs differ (%d vs %d bytes)", len(first), len(second))
	}

	if err := sweep.WriteTable(os.Stdout, rep); err != nil {
		return err
	}
	return nil
}

func failureSummary(rep *sweep.Report) string {
	var b bytes.Buffer
	for i := range rep.Configs {
		c := &rep.Configs[i]
		if c.Status == sweep.StatusFailed {
			fmt.Fprintf(&b, "%s: %s; ", c.Config.Label(), c.Reason)
			if b.Len() > 200 {
				break
			}
		}
	}
	return b.String()
}

func paretoLabels(rep *sweep.Report) []string {
	out := make([]string, 0, len(rep.Pareto))
	for _, i := range rep.Pareto {
		out = append(out, rep.Configs[i].Config.Label())
	}
	return out
}
