// Command tracegen generates synthetic ground-truth traces for the
// built-in protocols and writes them as pcap files (with Ethernet/IP/
// UDP encapsulation) plus a JSON sidecar holding the true dissection.
//
// Usage:
//
//	tracegen -proto ntp -n 1000 -seed 1 -out ntp.pcap
//
// The sidecar ntp.pcap.truth.json carries, per message, the field
// boundaries and type labels used for evaluation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"strings"

	"protoclust"
	"protoclust/internal/pcap"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

type truthField struct {
	Name   string `json:"name"`
	Offset int    `json:"offset"`
	Length int    `json:"length"`
	Type   string `json:"type"`
}

type truthMessage struct {
	Index  int          `json:"index"`
	Src    string       `json:"src"`
	Dst    string       `json:"dst"`
	Fields []truthField `json:"fields"`
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		proto = fs.String("proto", "ntp", "protocol to generate: "+strings.Join(protoclust.Protocols(), ", "))
		n     = fs.Int("n", 1000, "number of messages")
		seed  = fs.Int64("seed", 1, "generator seed")
		out   = fs.String("out", "", "output pcap path (default <proto>.pcap)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *out == "" {
		*out = *proto + ".pcap"
	}
	tr, err := protoclust.GenerateTrace(*proto, *n, *seed)
	if err != nil {
		return err
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()

	w := pcap.NewWriter(f, pcap.LinkTypeEthernet)
	truth := make([]truthMessage, 0, len(tr.Messages))
	for i, m := range tr.Messages {
		srcIP, srcPort := splitAddr(m.SrcAddr, byte(i))
		dstIP, dstPort := splitAddr(m.DstAddr, byte(i+1))
		frame, err := pcap.BuildUDPFrame(srcIP, dstIP, srcPort, dstPort, m.Data)
		if err != nil {
			return fmt.Errorf("message %d: %w", i, err)
		}
		if err := w.WritePacket(&pcap.Packet{Timestamp: m.Timestamp, Data: frame}); err != nil {
			return fmt.Errorf("message %d: %w", i, err)
		}
		tm := truthMessage{Index: i, Src: m.SrcAddr, Dst: m.DstAddr}
		for _, fl := range m.Fields {
			tm.Fields = append(tm.Fields, truthField{
				Name: fl.Name, Offset: fl.Offset, Length: fl.Length, Type: string(fl.Type),
			})
		}
		truth = append(truth, tm)
	}

	tf, err := os.Create(*out + ".truth.json")
	if err != nil {
		return err
	}
	defer tf.Close()
	enc := json.NewEncoder(tf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(truth); err != nil {
		return err
	}

	_, err = fmt.Fprintf(stdout, "wrote %d %s messages to %s (+ .truth.json)\n", len(tr.Messages), *proto, *out)
	return err
}

// splitAddr parses "host:port"; non-IP hosts (AWDL MACs, AU device
// names) map onto a synthetic 192.0.2.x address so the frames remain
// valid pcap.
func splitAddr(addr string, fallback byte) (net.IP, uint16) {
	host, portStr, err := net.SplitHostPort(addr)
	if err != nil {
		return net.IPv4(192, 0, 2, fallback|1), 0
	}
	ip := net.ParseIP(host)
	if ip == nil || ip.To4() == nil {
		return net.IPv4(192, 0, 2, fallback|1), 0
	}
	var port uint16
	if n, err := strconv.ParseUint(portStr, 10, 16); err == nil {
		port = uint16(n)
	}
	return ip, port
}
