package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"protoclust"
)

func TestRunWritesPCAPAndTruth(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "ntp.pcap")
	var sb strings.Builder
	if err := run([]string{"-proto", "ntp", "-n", "25", "-out", out}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(sb.String(), "wrote 25 ntp messages") {
		t.Errorf("unexpected output: %s", sb.String())
	}

	// The pcap must be readable by the library and contain 25 payloads.
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := protoclust.ReadPCAP(f, nil)
	if err != nil {
		t.Fatalf("ReadPCAP: %v", err)
	}
	if len(tr.Messages) != 25 {
		t.Errorf("pcap carries %d messages, want 25", len(tr.Messages))
	}
	for _, m := range tr.Messages {
		if len(m.Data) != 48 {
			t.Errorf("NTP payload %d bytes, want 48", len(m.Data))
		}
	}

	// The truth sidecar must parse and describe all messages.
	tf, err := os.ReadFile(out + ".truth.json")
	if err != nil {
		t.Fatal(err)
	}
	var truth []struct {
		Index  int `json:"index"`
		Fields []struct {
			Name   string `json:"name"`
			Offset int    `json:"offset"`
			Length int    `json:"length"`
			Type   string `json:"type"`
		} `json:"fields"`
	}
	if err := json.Unmarshal(tf, &truth); err != nil {
		t.Fatalf("truth json: %v", err)
	}
	if len(truth) != 25 {
		t.Fatalf("truth entries = %d, want 25", len(truth))
	}
	for _, tm := range truth {
		pos := 0
		for _, f := range tm.Fields {
			if f.Offset != pos {
				t.Fatalf("message %d: field %s at %d, want %d", tm.Index, f.Name, f.Offset, pos)
			}
			pos += f.Length
		}
		if pos != 48 {
			t.Errorf("message %d truth covers %d bytes", tm.Index, pos)
		}
	}
}

func TestRunAWDLUsesFallbackAddresses(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "awdl.pcap")
	if err := run([]string{"-proto", "awdl", "-n", "10", "-out", out}, &strings.Builder{}); err != nil {
		t.Fatalf("run: %v", err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := protoclust.ReadPCAP(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Messages) != 10 {
		t.Errorf("messages = %d, want 10", len(tr.Messages))
	}
	for _, m := range tr.Messages {
		if !strings.HasPrefix(m.SrcAddr, "192.0.2.") {
			t.Errorf("AWDL fallback address = %q, want 192.0.2.x", m.SrcAddr)
		}
	}
}

func TestRunUnknownProtocol(t *testing.T) {
	if err := run([]string{"-proto", "quic"}, &strings.Builder{}); err == nil {
		t.Error("unknown protocol should error")
	}
}

func TestRunUnwritablePath(t *testing.T) {
	if err := run([]string{"-proto", "ntp", "-n", "5", "-out", "/nonexistent-dir/x.pcap"}, &strings.Builder{}); err == nil {
		t.Error("unwritable output path should error")
	}
}
