// Command benchperf measures the dissimilarity hot path — kernel,
// pairwise matrix build, and k-NN table — at several population sizes
// and writes the results as a BENCH_*.json artifact. Each optimized
// number is paired with the pre-kernel reference implementation
// (dissim.ComputeReference, dissim.KNNTableSort,
// canberra.DissimilarityPenalty), so the file records the before/after
// of this optimization round and gives later PRs a trajectory to
// compare against. A per-backend shard additionally times the full
// matrix-build + k-NN pass through each storage backend (dense,
// condensed, tiled, and tiled under a constrained budget with spill),
// recording the throughput cost of bounded memory.
//
// Regenerate with:
//
//	make bench-json
//
// With -e2e-n the command instead runs the whole clustering pipeline on
// a clustered synthetic pool through the tiled backend under -e2e-budget
// resident bytes, cross-checking labels bit-for-bit against the
// condensed backend when n permits (≤ 5000). Wired as `make smoke-tiled`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"runtime"
	"time"

	"protoclust/internal/canberra"
	"protoclust/internal/core"
	"protoclust/internal/dissim"
	"protoclust/internal/netmsg"
)

// mixedLens approximates heuristic segmentation output: mostly short
// fields with a tail of longer ones.
var mixedLens = []int{2, 3, 4, 6, 8, 12, 16}

type kernelResult struct {
	// Per-call nanoseconds for one dissimilarity evaluation.
	EqualLengthNsOp   float64 `json:"equal_length_ns_op"`
	SlidingNsOp       float64 `json:"sliding_ns_op"`
	RefEqualLengthNs  float64 `json:"reference_equal_length_ns_op"`
	RefSlidingNs      float64 `json:"reference_sliding_ns_op"`
	EqualLengthSpeedx float64 `json:"equal_length_speedup"`
	SlidingSpeedx     float64 `json:"sliding_speedup"`
}

// pr1EqualLen8NsOp is the equal-length (len 8) per-call kernel cost the
// PR-1 scalar kernel recorded in BENCH_1.json on this benchmark host —
// the fixed baseline the per-kernel shard reports speedups against.
const pr1EqualLen8NsOp = 12.174

// lenTiming is one equal-length measurement of one kernel: the
// per-call DissimViews cost and the amortized per-pair cost of the
// batched entry point (64 partners per call — the matrix build's tile
// row) at the same length.
type lenTiming struct {
	Len         int     `json:"len"`
	PerCallNsOp float64 `json:"per_call_ns_op"`
	BatchNsPair float64 `json:"batch_ns_per_pair"`
}

// slidingTiming is one sliding-window (unequal length) measurement.
type slidingTiming struct {
	Shape string  `json:"shape"`
	NsOp  float64 `json:"ns_op"`
}

// kernelVariant is the per-kernel shard: every registered kernel the
// host can run, measured over the same inputs.
type kernelVariant struct {
	Kernel  string          `json:"kernel"`
	Exact   bool            `json:"exact"`
	Equal   []lenTiming     `json:"equal_length"`
	Sliding []slidingTiming `json:"sliding"`
	// Equal8VsScalar is scalar's len-8 per-call time over this kernel's.
	Equal8VsScalar float64 `json:"equal8_speedup_vs_scalar"`
	// Batch8VsPR1 is the PR-1 kernel baseline (pr1EqualLen8NsOp) over
	// this kernel's len-8 batched per-pair time — the production matrix
	// build path versus the original kernel.
	Batch8VsPR1 float64 `json:"batch_len8_speedup_vs_pr1"`
}

// scalingPoint is one GOMAXPROCS setting of the cores-vs-throughput
// sweep. Efficiency is T1 / (p · Tp) against this sweep's own p=1
// point; 1.0 is perfect linear scaling.
type scalingPoint struct {
	Procs     int     `json:"procs"`
	MatrixNs  int64   `json:"matrix_build_ns"`
	KNNNs     int64   `json:"knn_table_ns"`
	TiledNs   int64   `json:"tiled_pass_ns"`
	MatrixEff float64 `json:"matrix_parallel_efficiency"`
	KNNEff    float64 `json:"knn_parallel_efficiency"`
	TiledEff  float64 `json:"tiled_parallel_efficiency"`
}

// scalingResult is the multicore scaling shard: the three parallel
// stages (eager matrix build, k-NN table, lazy tiled matrix + k-NN
// pass) swept over GOMAXPROCS ∈ {1, 2, 4, ..., NumCPU}.
type scalingResult struct {
	N        int            `json:"n"`
	HostCPUs int            `json:"host_cpus"`
	Note     string         `json:"note,omitempty"`
	Points   []scalingPoint `json:"points"`
}

type stageResult struct {
	OptimizedNs int64   `json:"optimized_ns"`
	ReferenceNs int64   `json:"reference_ns"`
	NsPerOp     float64 `json:"optimized_ns_per_op"`
	RefNsPerOp  float64 `json:"reference_ns_per_op"`
	Speedup     float64 `json:"speedup"`
}

// backendResult times one storage backend end to end: matrix build plus
// a full k-NN table pass (the tiled backend computes lazily, so only
// the combined number is comparable across backends).
type backendResult struct {
	Backend       string  `json:"backend"`
	BudgetBytes   int64   `json:"budget_bytes,omitempty"`
	TotalNs       int64   `json:"total_ns"`
	NsPerPair     float64 `json:"ns_per_pair"`
	ResidentBytes int64   `json:"resident_bytes"`
	// VsDense is dense total time / this backend's total time (> 1 means
	// faster than dense).
	VsDense float64 `json:"throughput_vs_dense"`
}

type shapeResult struct {
	N           int             `json:"n"`
	Pairs       int             `json:"pairs"`
	KMax        int             `json:"kmax"`
	Kernel      kernelResult    `json:"kernel"`
	MatrixBuild stageResult     `json:"matrix_build"`
	KNNTable    stageResult     `json:"knn_table"`
	Backends    []backendResult `json:"backends"`
}

// e2eResult records one end-to-end tiled-backend pipeline run.
type e2eResult struct {
	N              int     `json:"n"`
	UniqueSegments int     `json:"unique_segments"`
	BudgetBytes    int64   `json:"budget_bytes"`
	ElapsedNs      int64   `json:"elapsed_ns"`
	Epsilon        float64 `json:"epsilon"`
	Clusters       int     `json:"clusters"`
	NoiseSegments  int     `json:"noise_segments"`
	ResidentBytes  int64   `json:"matrix_resident_bytes"`
	CrossChecked   bool    `json:"cross_checked_vs_condensed"`
}

type benchFile struct {
	Bench      int             `json:"bench"`
	Generated  string          `json:"generated"`
	GoVersion  string          `json:"go_version"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	Kernel     string          `json:"kernel,omitempty"`
	Note       string          `json:"note"`
	Kernels    []kernelVariant `json:"kernel_variants,omitempty"`
	Shapes     []shapeResult   `json:"shapes,omitempty"`
	Scaling    *scalingResult  `json:"scaling,omitempty"`
	E2E        *e2eResult      `json:"e2e,omitempty"`
}

// genPool builds a deterministic pool of n unique segments.
func genPool(n int, lens []int, seed int64) *dissim.Pool {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[string]bool)
	var segs []netmsg.Segment
	for len(seen) < n {
		l := lens[rng.Intn(len(lens))]
		b := make([]byte, l)
		for i := range b {
			b[i] = byte(rng.Intn(256))
		}
		if seen[string(b)] {
			continue
		}
		seen[string(b)] = true
		segs = append(segs, netmsg.Segment{Msg: &netmsg.Message{Data: b}, Offset: 0, Length: l})
	}
	return dissim.NewPool(segs)
}

// timeIt runs fn at least once and until minDuration has elapsed,
// returning nanoseconds per call.
func timeIt(minDuration time.Duration, fn func()) float64 {
	var (
		total time.Duration
		calls int
	)
	for total < minDuration {
		start := time.Now()
		fn()
		total += time.Since(start)
		calls++
	}
	return float64(total.Nanoseconds()) / float64(calls)
}

func measureKernel(rng *rand.Rand) kernelResult {
	const reps = 200000
	eqA, eqB := make([]byte, 8), make([]byte, 8)
	short, long := make([]byte, 4), make([]byte, 16)
	for _, b := range [][]byte{eqA, eqB, short, long} {
		// (*rand.Rand).Read is documented to always return a nil error.
		_, _ = rng.Read(b)
	}
	vEqA, vEqB := canberra.NewView(eqA), canberra.NewView(eqB)
	vShort, vLong := canberra.NewView(short), canberra.NewView(long)

	var sink float64
	run := func(fn func()) float64 {
		ns := timeIt(100*time.Millisecond, func() {
			for i := 0; i < reps; i++ {
				fn()
			}
		})
		return ns / reps
	}
	r := kernelResult{}
	r.EqualLengthNsOp = run(func() { sink += canberra.DissimViews(vEqA, vEqB, canberra.DefaultPenalty) })
	r.SlidingNsOp = run(func() { sink += canberra.DissimViews(vShort, vLong, canberra.DefaultPenalty) })
	r.RefEqualLengthNs = run(func() {
		// Inputs are fixed same-length vectors; the error path is dead.
		d, _ := canberra.DissimilarityPenalty(eqA, eqB, canberra.DefaultPenalty)
		sink += d
	})
	r.RefSlidingNs = run(func() {
		// Inputs are fixed valid-length vectors; the error path is dead.
		d, _ := canberra.DissimilarityPenalty(short, long, canberra.DefaultPenalty)
		sink += d
	})
	if sink == math.Inf(1) {
		log.Fatal("benchperf: sink overflow")
	}
	r.EqualLengthSpeedx = r.RefEqualLengthNs / r.EqualLengthNsOp
	r.SlidingSpeedx = r.RefSlidingNs / r.SlidingNsOp
	return r
}

// measureKernelVariants times every kernel the host can run over a
// fixed input grid: equal-length pairs at 8/16/32/64 bytes (per-call
// and batched) and two sliding-window shapes. The active kernel is
// restored afterwards.
func measureKernelVariants(rng *rand.Rand) []kernelVariant {
	orig := canberra.ActiveKernel()
	defer func() {
		if err := canberra.SetKernel(orig); err != nil {
			log.Fatalf("benchperf: restoring kernel %q: %v", orig, err)
		}
	}()

	const batchPartners = 64 // one matrix-build tile row
	lens := []int{8, 16, 32, 64}
	slides := [][2]int{{4, 16}, {8, 64}}

	randView := func(n int) canberra.View {
		b := make([]byte, n)
		// (*rand.Rand).Read is documented to always return a nil error.
		_, _ = rng.Read(b)
		return canberra.NewView(b)
	}

	var sink float64
	perCall := func(x, y canberra.View, reps int) float64 {
		ns := timeIt(100*time.Millisecond, func() {
			for i := 0; i < reps; i++ {
				sink += canberra.DissimViews(x, y, canberra.DefaultPenalty)
			}
		})
		return ns / float64(reps)
	}

	var out []kernelVariant
	for _, name := range canberra.Kernels() {
		if err := canberra.SetKernel(name); err != nil {
			log.Printf("benchperf: kernel %s: %v (skipping)", name, err)
			continue
		}
		v := kernelVariant{Kernel: name, Exact: canberra.KernelExact(name)}
		for _, l := range lens {
			x, y := randView(l), randView(l)
			ts := make([]canberra.View, batchPartners)
			for i := range ts {
				ts[i] = randView(l)
			}
			dists := make([]float64, batchPartners)
			reps := 200000 / l * 8
			t := lenTiming{Len: l, PerCallNsOp: perCall(x, y, reps)}
			batchNs := timeIt(100*time.Millisecond, func() {
				for i := 0; i < reps/batchPartners+1; i++ {
					canberra.DissimViewsBatch(x, ts, canberra.DefaultPenalty, dists)
					sink += dists[0]
				}
			})
			t.BatchNsPair = batchNs / float64(reps/batchPartners+1) / batchPartners
			v.Equal = append(v.Equal, t)
		}
		for _, sh := range slides {
			s, t := randView(sh[0]), randView(sh[1])
			reps := 100000 / sh[1] * 16
			v.Sliding = append(v.Sliding, slidingTiming{
				Shape: fmt.Sprintf("%dx%d", sh[0], sh[1]),
				NsOp:  perCall(s, t, reps),
			})
		}
		out = append(out, v)
	}
	if sink == math.Inf(1) {
		log.Fatal("benchperf: sink overflow")
	}
	var scalar8 float64
	for _, v := range out {
		if v.Kernel == "scalar" {
			scalar8 = v.Equal[0].PerCallNsOp
		}
	}
	for i := range out {
		out[i].Equal8VsScalar = scalar8 / out[i].Equal[0].PerCallNsOp
		out[i].Batch8VsPR1 = pr1EqualLen8NsOp / out[i].Equal[0].BatchNsPair
	}
	return out
}

// measureScaling sweeps GOMAXPROCS over powers of two up to the host's
// CPU count and times the three parallel stages at each setting. On a
// single-core host the sweep degenerates to one point with efficiency
// 1.0 by definition — the shard still documents the harness and the
// host limit.
func measureScaling(n int, seed int64) *scalingResult {
	pool := genPool(n, mixedLens, seed)
	k := kMax(n)
	host := runtime.NumCPU()
	var procs []int
	for p := 1; p < host; p *= 2 {
		procs = append(procs, p)
	}
	procs = append(procs, host)

	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)

	res := &scalingResult{N: n, HostCPUs: host}
	if host == 1 {
		res.Note = "single-CPU host: the sweep has one point and parallel " +
			"efficiency is 1.0 by definition; rerun on a multicore host for " +
			"meaningful scaling data"
	}
	const floor = 500 * time.Millisecond
	for _, p := range procs {
		runtime.GOMAXPROCS(p)
		pt := scalingPoint{Procs: p}
		pt.MatrixNs = int64(timeIt(floor, func() {
			if _, err := dissim.Compute(pool, canberra.DefaultPenalty); err != nil {
				log.Fatalf("benchperf: scaling Compute(n=%d, p=%d): %v", n, p, err)
			}
		}))
		m, err := dissim.Compute(pool, canberra.DefaultPenalty)
		if err != nil {
			log.Fatalf("benchperf: scaling Compute(n=%d, p=%d): %v", n, p, err)
		}
		pt.KNNNs = int64(timeIt(floor, func() {
			if _, err := m.KNNTable(k); err != nil {
				log.Fatalf("benchperf: scaling KNNTable(n=%d, p=%d): %v", n, p, err)
			}
		}))
		pt.TiledNs = int64(timeIt(floor, func() {
			tm, err := dissim.ComputeMatrix(pool, dissim.Config{
				Penalty: canberra.DefaultPenalty,
				Backend: dissim.BackendTiled,
			})
			if err != nil {
				log.Fatalf("benchperf: scaling tiled(n=%d, p=%d): %v", n, p, err)
			}
			if _, err := tm.KNNTable(k); err != nil {
				log.Fatalf("benchperf: scaling tiled KNNTable(n=%d, p=%d): %v", n, p, err)
			}
			if err := tm.Close(); err != nil {
				log.Fatalf("benchperf: scaling tiled Close(n=%d, p=%d): %v", n, p, err)
			}
		}))
		res.Points = append(res.Points, pt)
	}
	base := res.Points[0]
	for i := range res.Points {
		pt := &res.Points[i]
		pf := float64(pt.Procs)
		pt.MatrixEff = float64(base.MatrixNs) / (pf * float64(pt.MatrixNs))
		pt.KNNEff = float64(base.KNNNs) / (pf * float64(pt.KNNNs))
		pt.TiledEff = float64(base.TiledNs) / (pf * float64(pt.TiledNs))
	}
	return res
}

func kMax(n int) int {
	k := int(math.Round(math.Log(float64(n))))
	if k < 2 {
		k = 2
	}
	if k > n-1 {
		k = n - 1
	}
	return k
}

// constrainedBudget returns a tile budget that forces eviction and
// spill at size n: a quarter of the condensed footprint, floored at
// 1 MiB so the store keeps a useful working set.
func constrainedBudget(n int) int64 {
	b := int64(n) * int64(n-1) / 2 * 4 / 4
	if b < 1<<20 {
		b = 1 << 20
	}
	return b
}

// measureBackends times a full matrix-build + k-NN pass through each
// storage backend. The tiled backend computes tiles lazily during the
// k-NN pass, so build and query are timed as one unit everywhere to
// keep the numbers comparable.
func measureBackends(pool *dissim.Pool, n, k int, spill string) []backendResult {
	pairs := n * (n - 1) / 2
	cands := []struct {
		label   string
		backend string
		budget  int64
	}{
		{"dense", dissim.BackendDense, 0},
		{"condensed", dissim.BackendCondensed, 0},
		{"tiled", dissim.BackendTiled, 0},
		{"tiled+spill", dissim.BackendTiled, constrainedBudget(n)},
	}
	const floor = 500 * time.Millisecond
	var out []backendResult
	for _, c := range cands {
		var resident int64
		total := int64(timeIt(floor, func() {
			m, err := dissim.ComputeMatrix(pool, dissim.Config{
				Penalty:      canberra.DefaultPenalty,
				Backend:      c.backend,
				MemoryBudget: c.budget,
				SpillDir:     spill,
			})
			if err != nil {
				log.Fatalf("benchperf: ComputeMatrix(%s, n=%d): %v", c.label, n, err)
			}
			if _, err := m.KNNTable(k); err != nil {
				log.Fatalf("benchperf: KNNTable(%s, n=%d): %v", c.label, n, err)
			}
			resident = m.ResidentBytes()
			if err := m.Close(); err != nil {
				log.Fatalf("benchperf: Close(%s, n=%d): %v", c.label, n, err)
			}
		}))
		out = append(out, backendResult{
			Backend:       c.label,
			BudgetBytes:   c.budget,
			TotalNs:       total,
			NsPerPair:     float64(total) / float64(pairs),
			ResidentBytes: resident,
		})
	}
	for i := range out {
		out[i].VsDense = float64(out[0].TotalNs) / float64(out[i].TotalNs)
	}
	return out
}

func measureShape(n int, seed int64) shapeResult {
	pool := genPool(n, mixedLens, seed)
	pairs := n * (n - 1) / 2
	res := shapeResult{N: n, Pairs: pairs, KMax: kMax(n)}

	rng := rand.New(rand.NewSource(seed + 1))
	res.Kernel = measureKernel(rng)

	// Average over at least half a second per stage so small shapes do
	// not report single-run noise; the n = 8000 matrix builds exceed
	// the floor in one run anyway.
	const floor = 500 * time.Millisecond
	optNs := int64(timeIt(floor, func() {
		if _, err := dissim.Compute(pool, canberra.DefaultPenalty); err != nil {
			log.Fatalf("benchperf: Compute(n=%d): %v", n, err)
		}
	}))
	refNs := int64(timeIt(floor, func() {
		if _, err := dissim.ComputeReference(pool, canberra.DefaultPenalty); err != nil {
			log.Fatalf("benchperf: ComputeReference(n=%d): %v", n, err)
		}
	}))
	res.MatrixBuild = stageResult{
		OptimizedNs: optNs,
		ReferenceNs: refNs,
		NsPerOp:     float64(optNs) / float64(pairs),
		RefNsPerOp:  float64(refNs) / float64(pairs),
		Speedup:     float64(refNs) / float64(optNs),
	}

	m, err := dissim.Compute(pool, canberra.DefaultPenalty)
	if err != nil {
		log.Fatalf("benchperf: Compute(n=%d): %v", n, err)
	}
	optKNN := int64(timeIt(floor, func() {
		if _, err := m.KNNTable(res.KMax); err != nil {
			log.Fatalf("benchperf: KNNTable(n=%d): %v", n, err)
		}
	}))
	refKNN := int64(timeIt(floor, func() {
		if _, err := m.KNNTableSort(res.KMax); err != nil {
			log.Fatalf("benchperf: KNNTableSort(n=%d): %v", n, err)
		}
	}))
	res.KNNTable = stageResult{
		OptimizedNs: optKNN,
		ReferenceNs: refKNN,
		NsPerOp:     float64(optKNN) / float64(n),
		RefNsPerOp:  float64(refKNN) / float64(n),
		Speedup:     float64(refKNN) / float64(optKNN),
	}

	spill, err := os.MkdirTemp("", "benchperf-tiles-")
	if err != nil {
		log.Fatalf("benchperf: spill dir: %v", err)
	}
	defer func() {
		// Best-effort scratch cleanup; the spill file is already
		// unlinked, so a leftover directory is empty.
		_ = os.RemoveAll(spill)
	}()
	res.Backends = measureBackends(pool, n, res.KMax, spill)
	return res
}

// genClusteredSegs builds n unique segment values drawn from a small
// set of templates with positional jitter, so DBSCAN has real density
// structure to find (unlike genPool's uniform noise).
func genClusteredSegs(n int, seed int64) []netmsg.Segment {
	rng := rand.New(rand.NewSource(seed))
	lens := []int{4, 6, 8, 8, 12, 12, 16, 16}
	const templates = 12
	tmpl := make([][]byte, templates)
	for t := range tmpl {
		b := make([]byte, lens[t%len(lens)])
		for i := range b {
			b[i] = byte(rng.Intn(256))
		}
		tmpl[t] = b
	}
	seen := make(map[string]bool, n)
	segs := make([]netmsg.Segment, 0, n)
	for len(segs) < n {
		base := tmpl[rng.Intn(templates)]
		b := make([]byte, len(base))
		copy(b, base)
		// Jitter up to three positions by a small signed delta: close
		// in Canberra terms, yet combinatorially rich enough to yield
		// 50k+ unique values per template set.
		for j := rng.Intn(3) + 1; j > 0; j-- {
			p := rng.Intn(len(b))
			b[p] = byte(int(b[p]) + rng.Intn(17) - 8)
		}
		if seen[string(b)] {
			continue
		}
		seen[string(b)] = true
		segs = append(segs, netmsg.Segment{Msg: &netmsg.Message{Data: b}, Offset: 0, Length: len(b)})
	}
	return segs
}

// sameClustering reports whether two pipeline results are bit-identical:
// same ε, same clusters with the same unique-member index lists, same
// noise count.
func sameClustering(a, b *core.Result) error {
	if math.Float64bits(a.Config.Epsilon) != math.Float64bits(b.Config.Epsilon) {
		return fmt.Errorf("epsilon mismatch: %v vs %v", a.Config.Epsilon, b.Config.Epsilon)
	}
	if len(a.Clusters) != len(b.Clusters) {
		return fmt.Errorf("cluster count mismatch: %d vs %d", len(a.Clusters), len(b.Clusters))
	}
	for i := range a.Clusters {
		ai, bi := a.Clusters[i].UniqueIndexes, b.Clusters[i].UniqueIndexes
		if len(ai) != len(bi) {
			return fmt.Errorf("cluster %d size mismatch: %d vs %d", i, len(ai), len(bi))
		}
		for j := range ai {
			if ai[j] != bi[j] {
				return fmt.Errorf("cluster %d member %d mismatch: %d vs %d", i, j, ai[j], bi[j])
			}
		}
	}
	if len(a.Noise) != len(b.Noise) {
		return fmt.Errorf("noise count mismatch: %d vs %d", len(a.Noise), len(b.Noise))
	}
	return nil
}

// runE2E clusters an n-segment clustered pool end to end through the
// tiled backend under the given budget, cross-checks against the
// condensed backend when n permits, and writes the result file.
func runE2E(n int, budget int64, spill string, seed int64, out string) {
	if spill == "" {
		dir, err := os.MkdirTemp("", "benchperf-e2e-tiles-")
		if err != nil {
			log.Fatalf("benchperf: spill dir: %v", err)
		}
		defer func() {
			// Best-effort scratch cleanup (spill file is unlinked).
			_ = os.RemoveAll(dir)
		}()
		spill = dir
	}
	segs := genClusteredSegs(n, seed)
	p := core.DefaultParams()
	p.MatrixBackend = dissim.BackendTiled
	p.MemoryBudget = budget
	p.MatrixSpillDir = spill

	log.Printf("benchperf: e2e n=%d budget=%d via tiled backend ...", n, budget)
	start := time.Now()
	res, err := core.ClusterSegments(segs, p)
	if err != nil {
		log.Fatalf("benchperf: e2e ClusterSegments: %v", err)
	}
	elapsed := time.Since(start)
	resident := res.Matrix.ResidentBytes()
	if got := res.Matrix.Backend(); got != dissim.BackendTiled {
		log.Fatalf("benchperf: e2e backend = %q, want %q", got, dissim.BackendTiled)
	}
	if err := res.Matrix.Close(); err != nil {
		log.Fatalf("benchperf: e2e Close: %v", err)
	}

	e := &e2eResult{
		N:              n,
		UniqueSegments: res.Pool.Size(),
		BudgetBytes:    budget,
		ElapsedNs:      elapsed.Nanoseconds(),
		Epsilon:        res.Config.Epsilon,
		Clusters:       len(res.Clusters),
		NoiseSegments:  len(res.Noise),
		ResidentBytes:  resident,
	}

	// Cross-check labels against the condensed in-memory backend where
	// its footprint is trivially affordable; every backend must agree
	// bit for bit.
	if n <= 5000 {
		pc := core.DefaultParams()
		pc.MatrixBackend = dissim.BackendCondensed
		ref, err := core.ClusterSegments(segs, pc)
		if err != nil {
			log.Fatalf("benchperf: e2e condensed reference: %v", err)
		}
		if err := ref.Matrix.Close(); err != nil {
			log.Fatalf("benchperf: e2e reference Close: %v", err)
		}
		if err := sameClustering(res, ref); err != nil {
			log.Fatalf("benchperf: tiled vs condensed divergence: %v", err)
		}
		e.CrossChecked = true
	}

	f := benchFile{
		Bench:      5,
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Note: "end-to-end clustering through the bounded-memory tiled matrix " +
			"backend; labels cross-checked bit-for-bit against the condensed " +
			"backend when n <= 5000",
		E2E: e,
	}
	writeBenchFile(out, f)
	fmt.Printf("e2e n=%d unique=%d: %d clusters, %d noise, eps=%.6f, %.1fs, resident=%d bytes, cross-checked=%v\n",
		e.N, e.UniqueSegments, e.Clusters, e.NoiseSegments, e.Epsilon,
		elapsed.Seconds(), e.ResidentBytes, e.CrossChecked)
}

// writeBenchFile marshals f and writes it to path; "/dev/null" works
// because os.WriteFile truncates rather than creates over a device.
func writeBenchFile(path string, f benchFile) {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("benchperf: wrote %s", path)
}

func main() {
	out := flag.String("out", "BENCH_6.json", "output path")
	sizes := flag.String("sizes", "500,2000,8000", "comma-separated unique-segment counts")
	seed := flag.Int64("seed", 1, "pool generation seed")
	kernel := flag.String("kernel", "", "force a canberra kernel (see canberra.Kernels); default: auto/PROTOCLUST_KERNEL")
	scalingN := flag.Int("scaling-n", 2000, "unique-segment count for the GOMAXPROCS scaling sweep (0 disables)")
	scalingOnly := flag.Bool("scaling-only", false, "run only the scaling sweep (make bench-scaling smoke)")
	e2eN := flag.Int("e2e-n", 0, "run the end-to-end tiled-backend pipeline on an n-segment clustered pool instead of the stage benchmarks")
	e2eBudget := flag.Int64("e2e-budget", 2<<30, "with -e2e-n: tile LRU byte budget for the tiled backend")
	e2eSpill := flag.String("e2e-spill", "", "with -e2e-n: tile spill directory (default: a fresh temp dir)")
	flag.Parse()

	if err := canberra.EnvError(); err != nil {
		log.Printf("benchperf: warning: %v (fell back to auto kernel selection)", err)
	}
	if *kernel != "" {
		if err := canberra.SetKernel(*kernel); err != nil {
			log.Fatalf("benchperf: -kernel: %v", err)
		}
	}
	log.Printf("benchperf: active kernel %s (compiled in: %v)", canberra.ActiveKernel(), canberra.Kernels())

	if *e2eN > 0 {
		runE2E(*e2eN, *e2eBudget, *e2eSpill, *seed, *out)
		return
	}

	if *scalingOnly {
		if *scalingN <= 0 {
			log.Fatal("benchperf: -scaling-only needs -scaling-n > 0")
		}
		log.Printf("benchperf: scaling sweep n=%d ...", *scalingN)
		f := benchFile{
			Bench:      6,
			Generated:  time.Now().UTC().Format(time.RFC3339),
			GoVersion:  runtime.Version(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Kernel:     canberra.ActiveKernel(),
			Note:       "GOMAXPROCS scaling sweep only (make bench-scaling)",
			Scaling:    measureScaling(*scalingN, *seed),
		}
		writeBenchFile(*out, f)
		printScaling(f.Scaling)
		return
	}

	var ns []int
	for _, s := range splitComma(*sizes) {
		var n int
		if _, err := fmt.Sscanf(s, "%d", &n); err != nil || n < 10 {
			log.Fatalf("benchperf: bad size %q", s)
		}
		ns = append(ns, n)
	}
	if len(ns) == 0 {
		log.Fatal("benchperf: no sizes given")
	}

	f := benchFile{
		Bench:      6,
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Kernel:     canberra.ActiveKernel(),
		Note: "dissimilarity hot path: optimized = dispatched SIMD kernel + batched " +
			"equal-length runs + early abandon + tiled scheduling + bounded-heap k-NN; " +
			"reference = pre-kernel per-pair/per-row implementations kept in " +
			"internal/dissim/reference.go; kernel_variants = every compiled kernel on " +
			"this host over fixed inputs, batch_len8_speedup_vs_pr1 against the PR-1 " +
			"scalar kernel's 12.174 ns/op (BENCH_1.json); backends = matrix build + " +
			"full k-NN pass per storage backend; scaling = GOMAXPROCS sweep of the " +
			"three parallel stages",
	}
	log.Printf("benchperf: measuring kernel variants ...")
	f.Kernels = measureKernelVariants(rand.New(rand.NewSource(*seed)))
	for _, n := range ns {
		log.Printf("benchperf: measuring n=%d ...", n)
		f.Shapes = append(f.Shapes, measureShape(n, *seed))
	}
	if *scalingN > 0 {
		log.Printf("benchperf: scaling sweep n=%d ...", *scalingN)
		f.Scaling = measureScaling(*scalingN, *seed)
	}

	writeBenchFile(*out, f)
	for _, v := range f.Kernels {
		fmt.Printf("kernel %-11s eq8 %6.2f ns/op  batch8 %6.2f ns/pair  vs-scalar %5.2fx  vs-pr1 %5.2fx\n",
			v.Kernel, v.Equal[0].PerCallNsOp, v.Equal[0].BatchNsPair,
			v.Equal8VsScalar, v.Batch8VsPR1)
	}
	for _, s := range f.Shapes {
		fmt.Printf("n=%5d  matrix %6.2fx  knn %6.2fx  kernel eq %5.2fx sliding %5.2fx\n",
			s.N, s.MatrixBuild.Speedup, s.KNNTable.Speedup,
			s.Kernel.EqualLengthSpeedx, s.Kernel.SlidingSpeedx)
		for _, b := range s.Backends {
			fmt.Printf("         backend %-12s %8.1f ns/pair  resident %11d B  vs dense %5.2fx\n",
				b.Backend, b.NsPerPair, b.ResidentBytes, b.VsDense)
		}
	}
	printScaling(f.Scaling)
}

// printScaling writes the scaling shard's summary lines to stdout.
func printScaling(s *scalingResult) {
	if s == nil {
		return
	}
	if s.Note != "" {
		fmt.Printf("scaling n=%d: %s\n", s.N, s.Note)
	}
	for _, pt := range s.Points {
		fmt.Printf("scaling p=%2d  matrix %8.1fms eff %4.2f  knn %8.1fms eff %4.2f  tiled %8.1fms eff %4.2f\n",
			pt.Procs,
			float64(pt.MatrixNs)/1e6, pt.MatrixEff,
			float64(pt.KNNNs)/1e6, pt.KNNEff,
			float64(pt.TiledNs)/1e6, pt.TiledEff)
	}
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
