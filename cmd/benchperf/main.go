// Command benchperf measures the dissimilarity hot path — kernel,
// pairwise matrix build, and k-NN table — at several population sizes
// and writes the results as a BENCH_*.json artifact. Each optimized
// number is paired with the pre-kernel reference implementation
// (dissim.ComputeReference, dissim.KNNTableSort,
// canberra.DissimilarityPenalty), so the file records the before/after
// of this optimization round and gives later PRs a trajectory to
// compare against.
//
// Regenerate with:
//
//	make bench-json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"runtime"
	"time"

	"protoclust/internal/canberra"
	"protoclust/internal/dissim"
	"protoclust/internal/netmsg"
)

// mixedLens approximates heuristic segmentation output: mostly short
// fields with a tail of longer ones.
var mixedLens = []int{2, 3, 4, 6, 8, 12, 16}

type kernelResult struct {
	// Per-call nanoseconds for one dissimilarity evaluation.
	EqualLengthNsOp   float64 `json:"equal_length_ns_op"`
	SlidingNsOp       float64 `json:"sliding_ns_op"`
	RefEqualLengthNs  float64 `json:"reference_equal_length_ns_op"`
	RefSlidingNs      float64 `json:"reference_sliding_ns_op"`
	EqualLengthSpeedx float64 `json:"equal_length_speedup"`
	SlidingSpeedx     float64 `json:"sliding_speedup"`
}

type stageResult struct {
	OptimizedNs int64   `json:"optimized_ns"`
	ReferenceNs int64   `json:"reference_ns"`
	NsPerOp     float64 `json:"optimized_ns_per_op"`
	RefNsPerOp  float64 `json:"reference_ns_per_op"`
	Speedup     float64 `json:"speedup"`
}

type shapeResult struct {
	N           int          `json:"n"`
	Pairs       int          `json:"pairs"`
	KMax        int          `json:"kmax"`
	Kernel      kernelResult `json:"kernel"`
	MatrixBuild stageResult  `json:"matrix_build"`
	KNNTable    stageResult  `json:"knn_table"`
}

type benchFile struct {
	Bench      int           `json:"bench"`
	Generated  string        `json:"generated"`
	GoVersion  string        `json:"go_version"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Note       string        `json:"note"`
	Shapes     []shapeResult `json:"shapes"`
}

// genPool builds a deterministic pool of n unique segments.
func genPool(n int, lens []int, seed int64) *dissim.Pool {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[string]bool)
	var segs []netmsg.Segment
	for len(seen) < n {
		l := lens[rng.Intn(len(lens))]
		b := make([]byte, l)
		for i := range b {
			b[i] = byte(rng.Intn(256))
		}
		if seen[string(b)] {
			continue
		}
		seen[string(b)] = true
		segs = append(segs, netmsg.Segment{Msg: &netmsg.Message{Data: b}, Offset: 0, Length: l})
	}
	return dissim.NewPool(segs)
}

// timeIt runs fn at least once and until minDuration has elapsed,
// returning nanoseconds per call.
func timeIt(minDuration time.Duration, fn func()) float64 {
	var (
		total time.Duration
		calls int
	)
	for total < minDuration {
		start := time.Now()
		fn()
		total += time.Since(start)
		calls++
	}
	return float64(total.Nanoseconds()) / float64(calls)
}

func measureKernel(rng *rand.Rand) kernelResult {
	const reps = 200000
	eqA, eqB := make([]byte, 8), make([]byte, 8)
	short, long := make([]byte, 4), make([]byte, 16)
	for _, b := range [][]byte{eqA, eqB, short, long} {
		// (*rand.Rand).Read is documented to always return a nil error.
		_, _ = rng.Read(b)
	}
	vEqA, vEqB := canberra.NewView(eqA), canberra.NewView(eqB)
	vShort, vLong := canberra.NewView(short), canberra.NewView(long)

	var sink float64
	run := func(fn func()) float64 {
		ns := timeIt(100*time.Millisecond, func() {
			for i := 0; i < reps; i++ {
				fn()
			}
		})
		return ns / reps
	}
	r := kernelResult{}
	r.EqualLengthNsOp = run(func() { sink += canberra.DissimViews(vEqA, vEqB, canberra.DefaultPenalty) })
	r.SlidingNsOp = run(func() { sink += canberra.DissimViews(vShort, vLong, canberra.DefaultPenalty) })
	r.RefEqualLengthNs = run(func() {
		// Inputs are fixed same-length vectors; the error path is dead.
		d, _ := canberra.DissimilarityPenalty(eqA, eqB, canberra.DefaultPenalty)
		sink += d
	})
	r.RefSlidingNs = run(func() {
		// Inputs are fixed valid-length vectors; the error path is dead.
		d, _ := canberra.DissimilarityPenalty(short, long, canberra.DefaultPenalty)
		sink += d
	})
	if sink == math.Inf(1) {
		log.Fatal("benchperf: sink overflow")
	}
	r.EqualLengthSpeedx = r.RefEqualLengthNs / r.EqualLengthNsOp
	r.SlidingSpeedx = r.RefSlidingNs / r.SlidingNsOp
	return r
}

func kMax(n int) int {
	k := int(math.Round(math.Log(float64(n))))
	if k < 2 {
		k = 2
	}
	if k > n-1 {
		k = n - 1
	}
	return k
}

func measureShape(n int, seed int64) shapeResult {
	pool := genPool(n, mixedLens, seed)
	pairs := n * (n - 1) / 2
	res := shapeResult{N: n, Pairs: pairs, KMax: kMax(n)}

	rng := rand.New(rand.NewSource(seed + 1))
	res.Kernel = measureKernel(rng)

	// Average over at least half a second per stage so small shapes do
	// not report single-run noise; the n = 8000 matrix builds exceed
	// the floor in one run anyway.
	const floor = 500 * time.Millisecond
	optNs := int64(timeIt(floor, func() {
		if _, err := dissim.Compute(pool, canberra.DefaultPenalty); err != nil {
			log.Fatalf("benchperf: Compute(n=%d): %v", n, err)
		}
	}))
	refNs := int64(timeIt(floor, func() {
		if _, err := dissim.ComputeReference(pool, canberra.DefaultPenalty); err != nil {
			log.Fatalf("benchperf: ComputeReference(n=%d): %v", n, err)
		}
	}))
	res.MatrixBuild = stageResult{
		OptimizedNs: optNs,
		ReferenceNs: refNs,
		NsPerOp:     float64(optNs) / float64(pairs),
		RefNsPerOp:  float64(refNs) / float64(pairs),
		Speedup:     float64(refNs) / float64(optNs),
	}

	m, err := dissim.Compute(pool, canberra.DefaultPenalty)
	if err != nil {
		log.Fatalf("benchperf: Compute(n=%d): %v", n, err)
	}
	optKNN := int64(timeIt(floor, func() {
		if _, err := m.KNNTable(res.KMax); err != nil {
			log.Fatalf("benchperf: KNNTable(n=%d): %v", n, err)
		}
	}))
	refKNN := int64(timeIt(floor, func() {
		if _, err := m.KNNTableSort(res.KMax); err != nil {
			log.Fatalf("benchperf: KNNTableSort(n=%d): %v", n, err)
		}
	}))
	res.KNNTable = stageResult{
		OptimizedNs: optKNN,
		ReferenceNs: refKNN,
		NsPerOp:     float64(optKNN) / float64(n),
		RefNsPerOp:  float64(refKNN) / float64(n),
		Speedup:     float64(refKNN) / float64(optKNN),
	}
	return res
}

func main() {
	out := flag.String("out", "BENCH_1.json", "output path")
	sizes := flag.String("sizes", "500,2000,8000", "comma-separated unique-segment counts")
	seed := flag.Int64("seed", 1, "pool generation seed")
	flag.Parse()

	var ns []int
	for _, s := range splitComma(*sizes) {
		var n int
		if _, err := fmt.Sscanf(s, "%d", &n); err != nil || n < 10 {
			log.Fatalf("benchperf: bad size %q", s)
		}
		ns = append(ns, n)
	}
	if len(ns) == 0 {
		log.Fatal("benchperf: no sizes given")
	}

	f := benchFile{
		Bench:      1,
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Note: "dissimilarity hot path: optimized = view kernel + early abandon + " +
			"tiled scheduling + bounded-heap k-NN; reference = pre-kernel per-pair/" +
			"per-row implementations kept in internal/dissim/reference.go",
	}
	for _, n := range ns {
		log.Printf("benchperf: measuring n=%d ...", n)
		f.Shapes = append(f.Shapes, measureShape(n, *seed))
	}

	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("benchperf: wrote %s", *out)
	for _, s := range f.Shapes {
		fmt.Printf("n=%5d  matrix %6.2fx  knn %6.2fx  kernel eq %5.2fx sliding %5.2fx\n",
			s.N, s.MatrixBuild.Speedup, s.KNNTable.Speedup,
			s.Kernel.EqualLengthSpeedx, s.Kernel.SlidingSpeedx)
	}
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
