// Command goldencheck runs the analysis pipeline on the golden trace
// set and compares each run's headline numbers (ε, k, cluster count,
// precision, recall, F¼, coverage) against the records in
// testdata/golden/. It exits non-zero when any metric leaves its
// tolerance band.
//
// Usage:
//
//	goldencheck                  # check against the stored records
//	goldencheck -update          # regenerate the stored records
//	goldencheck -backend tiled   # force a matrix backend (same records)
//
// Wired as `make golden-check` / `make golden-update`; the make target
// runs both the default and the tiled backend against the same records,
// since every matrix backend must produce bit-identical labels.
package main

import (
	"flag"
	"fmt"
	"os"

	"protoclust/internal/golden"
)

func main() {
	var (
		update    = flag.Bool("update", false, "rewrite the golden records from the current pipeline output")
		dir       = flag.String("dir", "testdata/golden", "directory holding the golden records")
		backend   = flag.String("backend", "", "dissimilarity-matrix backend: dense, condensed, tiled (default: auto)")
		formatRun = flag.Bool("format", false, "also check the cross-trace field-type recognition records")
	)
	flag.Parse()

	tol := golden.DefaultTolerance()
	failed := 0
	for _, spec := range golden.DefaultTraces() {
		rec, err := golden.RunBackend(spec, *backend)
		if err != nil {
			fmt.Fprintf(os.Stderr, "FAIL %s: %v\n", spec, err)
			failed++
			continue
		}
		path := golden.Path(*dir, spec)
		if *update {
			if err := golden.Save(path, rec); err != nil {
				fmt.Fprintf(os.Stderr, "FAIL %s: write: %v\n", spec, err)
				failed++
				continue
			}
			fmt.Printf("wrote %s (eps=%.5f k=%d clusters=%d P=%.3f R=%.3f F=%.3f cov=%.3f)\n",
				path, rec.Epsilon, rec.K, rec.Clusters, rec.Precision, rec.Recall, rec.FScore, rec.Coverage)
			continue
		}
		want, err := golden.Load(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "FAIL %s: %v (run `goldencheck -update` to create the record)\n", spec, err)
			failed++
			continue
		}
		if violations := golden.Compare(want, rec, tol); len(violations) > 0 {
			fmt.Fprintf(os.Stderr, "FAIL %s:\n", spec)
			for _, v := range violations {
				fmt.Fprintf(os.Stderr, "  %s\n", v)
			}
			failed++
			continue
		}
		fmt.Printf("ok   %s (eps=%.5f k=%d clusters=%d P=%.3f R=%.3f F=%.3f cov=%.3f)\n",
			spec, rec.Epsilon, rec.K, rec.Clusters, rec.Precision, rec.Recall, rec.FScore, rec.Coverage)
	}
	if *formatRun {
		failed += checkFormats(*dir, *update, tol)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "golden check failed for %d trace(s)\n", failed)
		os.Exit(1)
	}
}

// checkFormats runs the cross-trace recognition set (train on one
// seed, recognize another) against its golden records, returning the
// failure count.
func checkFormats(dir string, update bool, tol golden.Tolerance) int {
	failed := 0
	for _, spec := range golden.DefaultFormatTraces() {
		rec, err := golden.RunFormat(spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "FAIL %s: %v\n", spec, err)
			failed++
			continue
		}
		path := golden.FormatPath(dir, spec)
		if update {
			if err := golden.SaveFormat(path, rec); err != nil {
				fmt.Fprintf(os.Stderr, "FAIL %s: write: %v\n", spec, err)
				failed++
				continue
			}
			fmt.Printf("wrote %s (templates=%d assigned=%d unknown=%d acc=%.3f cov=%.3f)\n",
				path, rec.Templates, rec.Assigned, rec.Unknown, rec.TypeAccuracy, rec.ByteCoverage)
			continue
		}
		want, err := golden.LoadFormat(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "FAIL %s: %v (run `goldencheck -update -format` to create the record)\n", spec, err)
			failed++
			continue
		}
		if violations := golden.CompareFormat(want, rec, tol); len(violations) > 0 {
			fmt.Fprintf(os.Stderr, "FAIL %s:\n", spec)
			for _, v := range violations {
				fmt.Fprintf(os.Stderr, "  %s\n", v)
			}
			failed++
			continue
		}
		fmt.Printf("ok   %s (templates=%d assigned=%d unknown=%d acc=%.3f cov=%.3f)\n",
			spec, rec.Templates, rec.Assigned, rec.Unknown, rec.TypeAccuracy, rec.ByteCoverage)
	}
	return failed
}
