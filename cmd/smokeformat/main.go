// Command smokeformat is the end-to-end smoke test of the field-type
// classification and recognition layer. For each covered protocol it
// trains templates on one golden generated trace (seed 1), recognizes a
// second trace of the same protocol (seed 2), and requires that:
//
//   - the type accuracy and byte coverage against ground truth clear
//     per-protocol floors set below the measured values, so genuine
//     regressions fail while harmless jitter does not,
//   - the template set survives a save/load round trip and the loaded
//     set recognizes identically,
//   - two independent end-to-end runs emit byte-identical schema JSON
//     (the determinism contract).
//
// It exits 0 on success and 1 with a diagnostic on any failure, so it
// can gate CI directly (`make smoke-format`).
package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"protoclust"
)

// floors are the per-protocol minimums for cross-trace recognition,
// set comfortably below the measured values (ntp 1.000/0.740,
// dns 0.745/0.907, nbns 1.000/0.669, modbus 0.859/0.579).
var floors = []struct {
	proto    string
	accuracy float64
	coverage float64
}{
	{"ntp", 0.95, 0.50},
	{"dns", 0.70, 0.70},
	{"nbns", 0.95, 0.50},
	{"modbus", 0.80, 0.40},
}

const trainSeed, recognizeSeed, messages = 1, 2, 100

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "smokeformat: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("smokeformat: PASS")
}

func run() error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	for _, f := range floors {
		schema, err := recognize(ctx, f.proto)
		if err != nil {
			return fmt.Errorf("%s: %w", f.proto, err)
		}
		fmt.Printf("%-8s templates=%d formats=%d\n", f.proto, len(schema.set.Templates), len(schema.rec.Schema.Formats))
		ev := schema.rec.Evaluate()
		if acc := ev.TypeAccuracy(); acc < f.accuracy {
			return fmt.Errorf("%s: type accuracy %.3f below floor %.2f", f.proto, acc, f.accuracy)
		}
		if cov := ev.ByteCoverage(); cov < f.coverage {
			return fmt.Errorf("%s: byte coverage %.3f below floor %.2f", f.proto, cov, f.coverage)
		}
		fmt.Printf("%-8s accuracy=%.3f coverage=%.3f\n", f.proto, ev.TypeAccuracy(), ev.ByteCoverage())

		// Save/load round trip: the loaded set must drive an identical
		// recognition.
		var buf bytes.Buffer
		if err := schema.set.Save(&buf); err != nil {
			return fmt.Errorf("%s: save templates: %w", f.proto, err)
		}
		loaded, err := protoclust.LoadTemplates(&buf)
		if err != nil {
			return fmt.Errorf("%s: load templates: %w", f.proto, err)
		}
		reRec, err := schema.analysis.RecognizeWith(loaded)
		if err != nil {
			return fmt.Errorf("%s: recognize with loaded templates: %w", f.proto, err)
		}
		var a, b bytes.Buffer
		if err := schema.rec.Schema.WriteJSON(&a); err != nil {
			return err
		}
		if err := reRec.Schema.WriteJSON(&b); err != nil {
			return err
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			return fmt.Errorf("%s: loaded template set produced a different schema", f.proto)
		}
	}

	// Determinism witness: two full independent runs — trace generation,
	// clustering, learning, recognition — must emit identical bytes.
	first, err := recognize(ctx, "dns")
	if err != nil {
		return err
	}
	second, err := recognize(ctx, "dns")
	if err != nil {
		return err
	}
	var a, b bytes.Buffer
	if err := first.rec.Schema.WriteJSON(&a); err != nil {
		return err
	}
	if err := second.rec.Schema.WriteJSON(&b); err != nil {
		return err
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		return fmt.Errorf("schema JSON is not deterministic: runs differ (%d vs %d bytes)", a.Len(), b.Len())
	}
	return nil
}

// recognition bundles one end-to-end run's artifacts.
type recognition struct {
	set      *protoclust.FieldTemplates
	analysis *protoclust.Analysis
	rec      *protoclust.FormatRecognition
}

// recognize trains templates on the protocol's seed-1 trace and
// recognizes the seed-2 trace against them.
func recognize(ctx context.Context, proto string) (*recognition, error) {
	opts := protoclust.DefaultOptions()
	opts.Segmenter = protoclust.SegmenterTruth

	train, err := protoclust.GenerateTrace(proto, messages, trainSeed)
	if err != nil {
		return nil, err
	}
	trainA, err := protoclust.AnalyzeContext(ctx, train, opts)
	if err != nil {
		return nil, fmt.Errorf("analyze training trace: %w", err)
	}
	ts, err := trainA.LearnTemplates()
	if err != nil {
		return nil, fmt.Errorf("learn templates: %w", err)
	}

	rec, err := protoclust.GenerateTrace(proto, messages, recognizeSeed)
	if err != nil {
		return nil, err
	}
	recA, err := protoclust.AnalyzeContext(ctx, rec, opts)
	if err != nil {
		return nil, fmt.Errorf("analyze recognition trace: %w", err)
	}
	r, err := recA.RecognizeWith(ts)
	if err != nil {
		return nil, fmt.Errorf("recognize: %w", err)
	}
	return &recognition{set: ts, analysis: recA, rec: r}, nil
}
