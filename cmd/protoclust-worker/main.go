// Command protoclust-worker is the stateless compute half of a
// distributed protoclustd deployment: it polls a coordinator
// (protoclustd -distributed) for shard leases, computes the leased
// 64×64 dissimilarity tiles through the same batched Canberra kernels a
// local run uses, and posts each result back under its SHA-256 content
// address. Workers hold no durable state — start as many as there are
// spare cores, anywhere that can reach the coordinator, and kill them
// freely: a dead worker's leases expire and its shards are re-leased to
// the survivors, and the content addressing makes late or duplicated
// completions harmless.
//
// Usage:
//
//	protoclust-worker -coordinator http://localhost:8077 -id worker-a
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"protoclust/internal/shard"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "protoclust-worker:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("protoclust-worker", flag.ContinueOnError)
	var (
		coordinator = fs.String("coordinator", "http://localhost:8077", "coordinator base URL")
		id          = fs.String("id", "", "worker name in leases and logs (default: worker-<pid>)")
		poll        = fs.Duration("poll", 500*time.Millisecond, "idle wait between lease attempts")
		shardDelay  = fs.Duration("shard-delay", 0, "test aid: sleep after computing each shard before posting")
		verbose     = fs.Bool("v", false, "debug-level logging")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" {
		*id = fmt.Sprintf("worker-%d", os.Getpid())
	}

	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	w := &shard.Worker{
		Coordinator: *coordinator,
		ID:          *id,
		Client:      &http.Client{Timeout: 5 * time.Minute},
		Poll:        *poll,
		ShardDelay:  *shardDelay,
		Log:         logger,
	}
	logger.Info("worker polling", "coordinator", *coordinator, "id", *id)
	if err := w.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
		return err
	}
	logger.Info("worker stopped")
	return nil
}
