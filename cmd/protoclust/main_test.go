package main

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunGeneratedTrace(t *testing.T) {
	var sb strings.Builder
	err := run(context.Background(), []string{"-proto", "ntp", "-n", "60", "-segmenter", "truth"}, &sb)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	for _, want := range []string{"trace: 60 messages", "auto-configured DBSCAN", "pseudo data type", "evaluation vs. ground truth"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunTimeoutExpires(t *testing.T) {
	var sb strings.Builder
	err := run(context.Background(), []string{"-proto", "smb", "-n", "500", "-segmenter", "truth", "-timeout", "1ns"}, &sb)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestRunCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := run(ctx, []string{"-proto", "ntp", "-n", "60", "-segmenter", "truth"}, &strings.Builder{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
}

func TestRunWithSemanticsAndDump(t *testing.T) {
	var sb strings.Builder
	err := run(context.Background(), []string{"-proto", "ntp", "-n", "60", "-segmenter", "truth", "-semantics", "-dump", "2", "-no-color"}, &sb)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "deduced cluster semantics") {
		t.Error("semantics section missing")
	}
	if !strings.Contains(out, "msg   0") {
		t.Error("dump section missing")
	}
	if strings.Contains(out, "\x1b[") {
		t.Error("-no-color output contains ANSI escapes")
	}
}

func TestRunRequiresInput(t *testing.T) {
	if err := run(context.Background(), nil, &strings.Builder{}); err == nil {
		t.Error("no input flags should error")
	}
}

func TestRunRejectsBothInputs(t *testing.T) {
	if err := run(context.Background(), []string{"-pcap", "x.pcap", "-proto", "ntp"}, &strings.Builder{}); err == nil {
		t.Error("both -pcap and -proto should error")
	}
}

func TestRunMissingPCAP(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "nope.pcap")
	if err := run(context.Background(), []string{"-pcap", missing}, &strings.Builder{}); err == nil {
		t.Error("missing pcap file should error")
	}
}

func TestRunBadSegmenter(t *testing.T) {
	if err := run(context.Background(), []string{"-proto", "ntp", "-n", "30", "-segmenter", "wireshark"}, &strings.Builder{}); err == nil {
		t.Error("unknown segmenter should error")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run(context.Background(), []string{"-definitely-not-a-flag"}, &strings.Builder{}); err == nil {
		t.Error("unknown flag should error")
	}
}

func TestRunGarbagePCAP(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.pcap")
	if err := os.WriteFile(path, []byte("this is not a pcap"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"-pcap", path}, &strings.Builder{}); err == nil {
		t.Error("garbage pcap should error")
	}
}

func TestRunMessageTypes(t *testing.T) {
	var sb strings.Builder
	err := run(context.Background(), []string{"-proto", "dns", "-n", "60", "-segmenter", "truth", "-msgtype"}, &sb)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(sb.String(), "message types (eps=") {
		t.Error("message-type section missing")
	}
}

func TestRunPCAPWithTruth(t *testing.T) {
	// Full user journey: tracegen-equivalent pcap + truth sidecar →
	// protoclust -pcap -truth scores against ground truth.
	dir := t.TempDir()
	out := filepath.Join(dir, "t.pcap")
	// Reuse tracegen's writer via the protoclust binary path: generate
	// with the library and write manually through the tracegen test? The
	// tracegen command lives in another package; emulate by running the
	// generator and writing with the pcap package is covered there.
	// Here: generate via -proto into a pcap using tracegen's sibling is
	// not accessible, so exercise the error path instead.
	if err := run(context.Background(), []string{"-pcap", out, "-truth", filepath.Join(dir, "missing.json")}, &strings.Builder{}); err == nil {
		t.Error("missing pcap should error before truth is read")
	}
}

func TestRunJSONOutput(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-proto", "ntp", "-n", "60", "-segmenter", "truth", "-json"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	var report struct {
		Messages    int `json:"messages"`
		PseudoTypes []struct {
			ID             int `json:"id"`
			DistinctValues int `json:"distinct_values"`
		} `json:"pseudo_types"`
		Epsilon float64 `json:"epsilon"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &report); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, sb.String())
	}
	if report.Messages != 60 {
		t.Errorf("messages = %d, want 60", report.Messages)
	}
	if len(report.PseudoTypes) == 0 || report.Epsilon <= 0 {
		t.Errorf("report not populated: %+v", report)
	}
}

func TestRunComposition(t *testing.T) {
	var sb strings.Builder
	if err := run(context.Background(), []string{"-proto", "ntp", "-n", "60", "-segmenter", "truth", "-composition"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(sb.String(), "cluster composition by true data type") {
		t.Error("composition section missing")
	}
}
