// Command protoclust clusters the message field data types of an
// unknown binary protocol from a pcap trace or a built-in generator,
// printing the inferred pseudo data types.
//
// Usage:
//
//	protoclust -pcap capture.pcap -port 123 -segmenter nemesys
//	protoclust -proto ntp -n 1000 -segmenter truth -dump 5 -semantics
//
// With -pcap, UDP/TCP payloads are extracted (optionally filtered to a
// port) and analyzed without any ground truth; with -proto, a synthetic
// trace is generated and the result is additionally scored against the
// known dissection.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"protoclust"
)

func main() {
	// SIGINT/SIGTERM cancel the analysis context: the pipeline aborts
	// mid-matrix instead of finishing the O(n²) build.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "protoclust:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("protoclust", flag.ContinueOnError)
	var (
		timeout   = fs.Duration("timeout", 0, "abort the analysis after this duration (0 = unbounded)")
		pcapPath  = fs.String("pcap", "", "pcap file to analyze")
		truthPath = fs.String("truth", "", "with -pcap: ground-truth sidecar json (as written by tracegen) to score against")
		port      = fs.Int("port", 0, "with -pcap: keep only payloads to/from this port")
		proto     = fs.String("proto", "", "generate a built-in trace instead: "+strings.Join(protoclust.Protocols(), ", "))
		n         = fs.Int("n", 1000, "with -proto: number of messages")
		seed      = fs.Int64("seed", 1, "with -proto: generator seed")
		segmenter = fs.String("segmenter", protoclust.SegmenterNEMESYS, "segmenter: truth, nemesys, netzob, csp")
		samples   = fs.Int("samples", 4, "sample values printed per cluster")
		verbose   = fs.Bool("v", false, "print every unique value per cluster")
		dump      = fs.Int("dump", 0, "annotated hex dump of the first N messages (bytes colored by cluster)")
		noColor   = fs.Bool("no-color", false, "with -dump: plain tags instead of ANSI colors")
		semFlag   = fs.Bool("semantics", false, "deduce and print cluster semantics")
		msgTypes  = fs.Bool("msgtype", false, "cluster whole messages into message types first")
		asJSON    = fs.Bool("json", false, "emit the analysis as JSON instead of text")
		compFlag  = fs.Bool("composition", false, "with ground truth: print cluster composition by true type")
		memBudget = fs.Int64("memory-budget", 0, "resident bytes allowed for the dissimilarity matrix (0 = 2 GiB default); larger pools switch to the tiled backend")
		backend   = fs.String("matrix-backend", "", "force the matrix storage backend: dense, condensed, tiled (default: auto within -memory-budget)")
		spillDir  = fs.String("spill-dir", "", "with the tiled backend: spill evicted tiles to scratch files under this directory")

		sweepFlag  = fs.Bool("sweep", false, "run a configuration sweep instead of a single analysis (see the -sweep-* axes)")
		sweepSegs  = fs.String("sweep-segmenters", "", "comma-separated segmenter axis (default: the -segmenter value)")
		sweepCls   = fs.String("sweep-clusterers", "", "comma-separated clusterer axis: dbscan, optics, hdbscan (default: dbscan)")
		sweepKs    = fs.String("sweep-ks", "", "comma-separated k' axis; 0 = auto kMax (default: 0)")
		sweepEps   = fs.String("sweep-eps", "", `comma-separated ε-source axis: "knee", "quantile:Q", "fixed:E" (default: knee)`)
		ensembleOn = fs.Bool("ensemble", false, "with -sweep: co-association ensemble voting per segmenter")
		ensWeight  = fs.Bool("ensemble-weighted", false, "with -ensemble: weight member votes by sweep score instead of equally")

		formatFlag   = fs.Bool("format", false, "emit a message-format schema JSON (field types recognized via -templates, or self-trained)")
		templatesIn  = fs.String("templates", "", "recognize against field-type templates loaded from this file (as written by -templates-out)")
		templatesOut = fs.String("templates-out", "", "train field-type templates on this trace and save them to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var (
		tr  *protoclust.Trace
		err error
	)
	switch {
	case *pcapPath != "" && *proto != "":
		return fmt.Errorf("use either -pcap or -proto, not both")
	case *pcapPath != "":
		f, err2 := os.Open(*pcapPath)
		if err2 != nil {
			return err2
		}
		defer f.Close()
		filter := func(src, dst string, payload []byte) bool {
			if *port == 0 {
				return true
			}
			p := ":" + strconv.Itoa(*port)
			return strings.HasSuffix(src, p) || strings.HasSuffix(dst, p)
		}
		tr, err = protoclust.ReadPCAP(f, filter)
		if err == nil && *truthPath != "" {
			tf, err2 := os.Open(*truthPath)
			if err2 != nil {
				return err2
			}
			err = protoclust.AttachTruth(tr, tf)
			// Read-only file: a close error carries no data-loss signal.
			_ = tf.Close()
		}
	case *proto != "":
		tr, err = protoclust.GenerateTrace(*proto, *n, *seed)
	default:
		return fmt.Errorf("one of -pcap or -proto is required")
	}
	if err != nil {
		return err
	}
	out := &printer{w: stdout}
	// -json and -format own stdout with machine-readable output.
	if !*asJSON && !*formatFlag {
		out.printf("trace: %d messages, %d bytes\n", len(tr.Messages), tr.TotalBytes())
	}

	opts := protoclust.DefaultOptions()
	opts.Segmenter = *segmenter
	opts.MemoryBudget = *memBudget
	opts.Params.MatrixBackend = *backend
	opts.Params.MatrixSpillDir = *spillDir

	if *sweepFlag {
		if out.err != nil {
			return out.err
		}
		return runSweep(ctx, tr, opts, sweepArgs{
			segmenters: *sweepSegs,
			clusterers: *sweepCls,
			ks:         *sweepKs,
			eps:        *sweepEps,
			ensemble:   *ensembleOn,
			weighted:   *ensWeight,
			samples:    *samples,
			asJSON:     *asJSON,
		}, stdout)
	}

	if *msgTypes {
		mt, err := protoclust.ClusterMessageTypes(tr, opts)
		if err != nil {
			return err
		}
		out.printf("message types (eps=%.3f): %d types, %d unmatched\n",
			mt.Epsilon, len(mt.Types), len(mt.Noise))
		for i, group := range mt.Types {
			out.printf("    type %d: %d messages, e.g. %x…\n",
				i, len(group), group[0].Data[:minInt(8, len(group[0].Data))])
		}
		out.println()
	}
	start := time.Now()
	analysis, err := protoclust.AnalyzeContext(ctx, tr, opts)
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("analysis exceeded -timeout after %s: %w", time.Since(start).Round(time.Millisecond), err)
	case errors.Is(err, context.Canceled):
		return fmt.Errorf("analysis interrupted after %s: %w", time.Since(start).Round(time.Millisecond), err)
	case err != nil:
		return err
	}

	if *formatFlag || *templatesOut != "" {
		if out.err != nil {
			return out.err
		}
		return runFormat(analysis, formatArgs{
			emit:         *formatFlag,
			templatesIn:  *templatesIn,
			templatesOut: *templatesOut,
		}, stdout)
	}

	if *asJSON {
		if out.err != nil {
			return out.err
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(analysis.Report(*samples))
	}

	out.printf("auto-configured DBSCAN: eps=%.3f min_samples=%d (unique segments: %d)\n",
		analysis.Epsilon(), analysis.MinSamples(), analysis.UniqueSegments())
	out.printf("coverage: %.1f%% of trace bytes\n\n", analysis.Coverage()*100)

	for _, pt := range analysis.PseudoTypes() {
		out.printf("pseudo data type %d: %d segments, %d distinct values\n",
			pt.ID, len(pt.Segments), len(pt.UniqueValues))
		limit := *samples
		if *verbose {
			limit = len(pt.UniqueValues)
		}
		for _, v := range pt.SampleValues(limit) {
			out.printf("    %s\n", v)
		}
	}
	out.printf("\nnoise: %d segments\n", len(analysis.Noise()))

	if *semFlag {
		out.println("\ndeduced cluster semantics:")
		for _, d := range analysis.DeduceSemantics() {
			out.printf("    type %2d: %-13s (confidence %.2f, %s)\n", d.ClusterID, d.Label, d.Confidence, d.Detail)
		}
	}

	if *compFlag {
		out.println()
		if err := analysis.WriteClusterComposition(stdout); err != nil {
			return err
		}
	}

	if *dump > 0 {
		out.println()
		if err := analysis.WriteClusterDump(stdout, *dump, !*noColor); err != nil {
			return err
		}
	}

	if *proto != "" || *truthPath != "" {
		m := analysis.Evaluate()
		out.printf("\nevaluation vs. ground truth: P=%.2f R=%.2f F1/4=%.2f\n",
			m.Precision, m.Recall, m.FScore)
	}
	return out.err
}

// printer accumulates the first write error so the report above doesn't
// need an error ladder per line ("errors are values"); run returns it
// once at the end.
type printer struct {
	w   io.Writer
	err error
}

func (p *printer) printf(format string, a ...any) {
	if p.err == nil {
		_, p.err = fmt.Fprintf(p.w, format, a...)
	}
}

func (p *printer) println(a ...any) {
	if p.err == nil {
		_, p.err = fmt.Fprintln(p.w, a...)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
