package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"protoclust"
	"protoclust/internal/sweep"
)

// sweepArgs carries the parsed -sweep-* flags into runSweep.
type sweepArgs struct {
	segmenters string
	clusterers string
	ks         string
	eps        string
	ensemble   bool
	weighted   bool
	samples    int
	asJSON     bool
}

// runSweep fans the flag grid over the trace and renders the report as
// a table (or JSON with -json). The base options carry the segmenter
// default and the matrix budget/backend flags into every configuration.
func runSweep(ctx context.Context, tr *protoclust.Trace, opts protoclust.Options, a sweepArgs, stdout io.Writer) error {
	grid := sweep.Grid{
		Segmenters: splitList(a.segmenters),
		Clusterers: splitList(a.clusterers),
	}
	if len(grid.Segmenters) == 0 {
		grid.Segmenters = []string{opts.Segmenter}
	}
	for _, name := range grid.Segmenters {
		if _, err := protoclust.NewSegmenter(name); err != nil {
			return err
		}
	}
	for _, raw := range splitList(a.ks) {
		k, err := strconv.Atoi(raw)
		if err != nil {
			return fmt.Errorf("bad -sweep-ks entry %q: %w", raw, err)
		}
		grid.Ks = append(grid.Ks, k)
	}
	for _, raw := range splitList(a.eps) {
		es, err := sweep.ParseEps(raw)
		if err != nil {
			return err
		}
		grid.EpsSources = append(grid.EpsSources, es)
	}

	rep, err := sweep.Run(ctx, tr, sweep.Options{
		Grid:             grid,
		Base:             opts,
		Ensemble:         a.ensemble,
		EnsembleWeighted: a.weighted,
		SampleValues:     a.samples,
	})
	if err != nil {
		return err
	}
	if a.asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	return sweep.WriteTable(stdout, rep)
}

// splitList splits a comma-separated flag value, dropping empty items.
func splitList(s string) []string {
	var out []string
	for _, item := range strings.Split(s, ",") {
		if item = strings.TrimSpace(item); item != "" {
			out = append(out, item)
		}
	}
	return out
}
