package main

import (
	"fmt"
	"io"
	"os"

	"protoclust"
)

// formatArgs carries the parsed -format/-templates flags into
// runFormat.
type formatArgs struct {
	emit         bool   // -format: write the schema JSON to stdout
	templatesIn  string // -templates: recognize against this saved set
	templatesOut string // -templates-out: save the trained set here
}

// runFormat handles the field-type recognition flags: templates come
// either from -templates (trained on another trace) or are learned from
// this analysis; -templates-out persists them; -format classifies the
// analysis's clusters against the set and emits the message-format
// schema JSON.
func runFormat(a *protoclust.Analysis, fa formatArgs, stdout io.Writer) error {
	var (
		ts  *protoclust.FieldTemplates
		err error
	)
	if fa.templatesIn != "" {
		f, err2 := os.Open(fa.templatesIn)
		if err2 != nil {
			return err2
		}
		ts, err = protoclust.LoadTemplates(f)
		// Read-only file: a close error carries no data-loss signal.
		_ = f.Close()
	} else {
		ts, err = a.LearnTemplates()
	}
	if err != nil {
		return err
	}

	if fa.templatesOut != "" {
		f, err := os.Create(fa.templatesOut)
		if err != nil {
			return err
		}
		if err := ts.Save(f); err != nil {
			// The write already failed; the close error adds nothing.
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("save templates: %w", err)
		}
	}

	if !fa.emit {
		return nil
	}
	rec, err := a.RecognizeWith(ts)
	if err != nil {
		return err
	}
	return rec.Schema.WriteJSON(stdout)
}
