// Command protoclustvet runs the protoclust domain lint suite
// (internal/lint) over every package in the module: the per-package
// analyzers (ctxflow, determinism, errdiscard, floatcmp, idxoverflow,
// nanguard) plus the module-wide dataflow analyzers (detflow, goroleak,
// mutexhold) that run over the whole-program call graph. It depends on
// the Go standard library only, so it works in offline CI.
//
// Usage:
//
//	protoclustvet [-dir .] [-analyzers a,b] [-json] [-sarif] [-out findings.json] [-sarif-out findings.sarif] [-timing] [-list]
//
// Exit status is 0 when the module is clean, 1 when findings exist,
// and 2 on loader or usage errors. Findings print as
// file:line:col: message (analyzer); -json switches stdout to a
// machine-readable report, and -out additionally writes that JSON to a
// file while keeping the human-readable text on stdout (used by CI to
// upload a triage artifact without losing the log). -sarif and
// -sarif-out do the same with a SARIF 2.1.0 log that code-scanning
// viewers ingest; -timing appends the per-analyzer wall-clock table.
//
// Suppress a finding with //lint:ignore <analyzer> <reason> on the
// offending line or the line above it. See docs/linting.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"protoclust/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("protoclustvet", flag.ContinueOnError)
	var (
		dir       = fs.String("dir", ".", "module root, or any directory inside it")
		names     = fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		asJSON    = fs.Bool("json", false, "write the report as JSON on stdout")
		outPath   = fs.String("out", "", "also write the JSON report to this file")
		sarifPath = fs.String("sarif-out", "", "also write a SARIF 2.1.0 report to this file")
		asSARIF   = fs.Bool("sarif", false, "write the report as SARIF 2.1.0 on stdout")
		list      = fs.Bool("list", false, "list available analyzers and exit")
		showSuppr = fs.Bool("suppressed", false, "include suppressed findings in the text report")
		timing    = fs.Bool("timing", false, "print per-analyzer wall-clock cost after the text report")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lint.All {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.All
	if *names != "" {
		analyzers = nil
		for _, name := range strings.Split(*names, ",") {
			a := lint.ByName(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "protoclustvet: unknown analyzer %q (use -list)\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	root, err := lint.FindModuleRoot(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "protoclustvet: %v\n", err)
		return 2
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "protoclustvet: %v\n", err)
		return 2
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		fmt.Fprintf(os.Stderr, "protoclustvet: %v\n", err)
		return 2
	}
	res := lint.Run(pkgs, analyzers)

	if *outPath != "" {
		if err := writeJSON(*outPath, res); err != nil {
			fmt.Fprintf(os.Stderr, "protoclustvet: %v\n", err)
			return 2
		}
	}
	if *sarifPath != "" {
		if err := writeSARIF(*sarifPath, res, root); err != nil {
			fmt.Fprintf(os.Stderr, "protoclustvet: %v\n", err)
			return 2
		}
	}
	switch {
	case *asSARIF:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(toSARIF(res, root)); err != nil {
			fmt.Fprintf(os.Stderr, "protoclustvet: %v\n", err)
			return 2
		}
	case *asJSON:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintf(os.Stderr, "protoclustvet: %v\n", err)
			return 2
		}
	default:
		for _, f := range res.Findings {
			fmt.Println(f)
		}
		if *showSuppr {
			for _, f := range res.Suppressed {
				fmt.Printf("%s [suppressed]\n", f)
			}
		}
		fmt.Printf("protoclustvet: %d package(s), %d finding(s), %d suppressed\n",
			len(pkgs), len(res.Findings), len(res.Suppressed))
		if *timing {
			for _, t := range res.Timing {
				fmt.Printf("  %-12s %8.1fms\n", t.Analyzer, t.Millis)
			}
		}
	}
	if len(res.Findings) > 0 {
		return 1
	}
	return 0
}

func writeJSON(path string, res *lint.Result) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
