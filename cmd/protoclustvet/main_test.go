package main

import "testing"

func TestListExitsClean(t *testing.T) {
	if got := run([]string{"-list"}); got != 0 {
		t.Fatalf("run(-list) = %d, want 0", got)
	}
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	if got := run([]string{"-analyzers", "nope"}); got != 2 {
		t.Fatalf("run(-analyzers nope) = %d, want 2", got)
	}
}

func TestBadFlagIsUsageError(t *testing.T) {
	if got := run([]string{"-definitely-not-a-flag"}); got != 2 {
		t.Fatalf("run(bad flag) = %d, want 2", got)
	}
}

func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module")
	}
	if got := run([]string{"-dir", "."}); got != 0 {
		t.Fatalf("run(.) = %d, want 0: the tree must lint clean", got)
	}
}
