package main

import (
	"encoding/json"
	"os"
	"path/filepath"

	"protoclust/internal/lint"
)

// SARIF 2.1.0 is the interchange format code-scanning UIs (GitHub,
// VS Code SARIF viewers) consume. The subset below is the minimum a
// valid run needs: one tool driver carrying the analyzer catalogue as
// rules, and one result per finding with a physical location. Only
// active findings are exported — suppressed ones stay in the JSON
// report, which remains the audit artifact.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// toSARIF converts a lint result into a single-run SARIF log. The rule
// table always lists the full analyzer catalogue (plus the framework's
// directive pseudo-analyzer) so rule metadata stays stable regardless
// of which subset ran.
func toSARIF(res *lint.Result, root string) sarifLog {
	rules := make([]sarifRule, 0, len(lint.All)+1)
	for _, a := range lint.All {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	rules = append(rules, sarifRule{
		ID:               lint.DirectiveAnalyzerName,
		ShortDescription: sarifMessage{Text: "malformed //lint:ignore directive"},
	})

	results := make([]sarifResult, 0, len(res.Findings))
	for _, f := range res.Findings {
		uri := f.File
		if rel, err := filepath.Rel(root, uri); err == nil && filepath.IsAbs(uri) {
			uri = rel
		}
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "warning",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI:       filepath.ToSlash(uri),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
		})
	}

	return sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:  "protoclustvet",
				Rules: rules,
			}},
			Results: results,
		}},
	}
}

func writeSARIF(path string, res *lint.Result, root string) error {
	data, err := json.MarshalIndent(toSARIF(res, root), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
