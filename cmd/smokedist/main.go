// Command smokedist is the end-to-end smoke test of the distributed
// coordinator/worker path. It builds the protoclustd and
// protoclust-worker binaries, launches one coordinator (with a durable
// jobstore and a short shard-lease TTL) plus two workers, submits an
// analysis job, SIGKILLs one worker mid-run, and requires that the
// surviving fleet finishes the job with a report byte-identical to the
// same job run on a single-process (non-distributed) daemon.
//
// It exits 0 on success and 1 with a diagnostic on any failure, so it
// can gate CI directly (`make smoke-distributed`).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "smokedist: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("smokedist: PASS")
}

func run() error {
	var (
		shardDelay = flag.Duration("shard-delay", 150*time.Millisecond, "artificial per-shard delay in the workers, to widen the kill window")
		leaseTTL   = flag.Duration("lease-ttl", 2*time.Second, "coordinator shard-lease TTL")
		jobTimeout = flag.Duration("job-timeout", 2*time.Minute, "per-phase deadline")
		keep       = flag.Bool("keep", false, "keep the scratch directory for inspection")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	dir, err := os.MkdirTemp("", "smokedist-")
	if err != nil {
		return err
	}
	if *keep {
		fmt.Println("smokedist: scratch dir", dir)
	} else {
		defer func() {
			// Scratch-dir cleanup; nothing to act on if it fails at exit.
			_ = os.RemoveAll(dir)
		}()
	}

	daemonBin := filepath.Join(dir, "protoclustd")
	workerBin := filepath.Join(dir, "protoclust-worker")
	for bin, pkg := range map[string]string{daemonBin: "./cmd/protoclustd", workerBin: "./cmd/protoclust-worker"} {
		build := exec.CommandContext(ctx, "go", "build", "-o", bin, pkg)
		build.Stdout, build.Stderr = os.Stdout, os.Stderr
		if err := build.Run(); err != nil {
			return fmt.Errorf("build %s: %w", pkg, err)
		}
	}

	spec := map[string]any{
		"proto": "ntp", "n": 60, "seed": 1, "segmenter": "truth",
		"timeout_ms": jobTimeout.Milliseconds(),
	}

	distReport, err := distributedRun(ctx, dir, daemonBin, workerBin, *shardDelay, *leaseTTL, *jobTimeout, spec)
	if err != nil {
		return fmt.Errorf("distributed run: %w", err)
	}
	localReport, err := localRun(ctx, daemonBin, *jobTimeout, spec)
	if err != nil {
		return fmt.Errorf("single-process run: %w", err)
	}
	if !bytes.Equal(distReport, localReport) {
		return fmt.Errorf("distributed report differs from single-process report:\ndistributed: %s\nlocal:       %s",
			distReport, localReport)
	}
	fmt.Println("smokedist: distributed report is byte-identical to the single-process report")
	return nil
}

// distributedRun drives the coordinator + two workers, kills one worker
// after the first shard completes, and returns the final report JSON.
func distributedRun(ctx context.Context, dir, daemonBin, workerBin string, shardDelay, leaseTTL, timeout time.Duration, spec map[string]any) ([]byte, error) {
	addr, err := freeAddr()
	if err != nil {
		return nil, err
	}
	base := "http://" + addr
	daemon := exec.CommandContext(ctx, daemonBin,
		"-addr", addr,
		"-workers", "1",
		"-distributed",
		"-jobstore", filepath.Join(dir, "jobs.jsonl"),
		"-lease-ttl", leaseTTL.String(),
		"-shard-tiles", "2",
		"-grace", "5s",
	)
	daemon.Stdout, daemon.Stderr = os.Stdout, os.Stderr
	if err := daemon.Start(); err != nil {
		return nil, fmt.Errorf("start coordinator: %w", err)
	}
	defer reap(daemon)
	if err := waitHealthy(ctx, base, 30*time.Second); err != nil {
		return nil, err
	}

	// Worker 0 is the victim: its per-shard delay spans the whole lease
	// TTL, so when it is killed it is guaranteed to die holding a lease
	// mid-compute. Worker 1 is the fast survivor that steals the shard.
	delays := []time.Duration{leaseTTL, shardDelay}
	workers := make([]*exec.Cmd, 2)
	for i := range workers {
		w := exec.CommandContext(ctx, workerBin,
			"-coordinator", base,
			"-id", fmt.Sprintf("smoke-worker-%d", i),
			"-poll", "25ms",
			"-shard-delay", delays[i].String(),
		)
		w.Stdout, w.Stderr = os.Stdout, os.Stderr
		if err := w.Start(); err != nil {
			return nil, fmt.Errorf("start worker %d: %w", i, err)
		}
		workers[i] = w
		defer reap(w)
	}

	id, err := submit(ctx, base, spec)
	if err != nil {
		return nil, err
	}
	fmt.Println("smokedist: submitted distributed job", id)

	// Wait for the first completed shard, then SIGKILL worker 0 while
	// the job is mid-flight. Its leases must expire and be stolen by the
	// surviving worker.
	if err := waitMetric(ctx, base, "protoclustd_shards_completed_total", 1, timeout); err != nil {
		return nil, fmt.Errorf("no shard ever completed: %w", err)
	}
	if err := workers[0].Process.Kill(); err != nil {
		return nil, fmt.Errorf("kill worker 0: %w", err)
	}
	// The killed worker's exit error is expected; reap it now so the
	// deferred reap is a no-op.
	_ = workers[0].Wait()
	fmt.Println("smokedist: SIGKILLed worker 0 mid-run")

	report, err := awaitResult(ctx, base, id, timeout)
	if err != nil {
		return nil, err
	}
	exp, err := metricValue(ctx, base, "protoclustd_shard_lease_expirations_total")
	if err != nil {
		return nil, err
	}
	if exp < 1 {
		return nil, fmt.Errorf("job finished but no lease expired: the killed worker's shard was never stolen")
	}
	fmt.Printf("smokedist: %d lease(s) expired and were requeued after the kill\n", int(exp))
	return report, shutdown(daemon)
}

// localRun computes the reference report on a plain non-distributed
// daemon process.
func localRun(ctx context.Context, daemonBin string, timeout time.Duration, spec map[string]any) ([]byte, error) {
	addr, err := freeAddr()
	if err != nil {
		return nil, err
	}
	base := "http://" + addr
	daemon := exec.CommandContext(ctx, daemonBin, "-addr", addr, "-workers", "1", "-grace", "5s")
	daemon.Stdout, daemon.Stderr = os.Stdout, os.Stderr
	if err := daemon.Start(); err != nil {
		return nil, fmt.Errorf("start daemon: %w", err)
	}
	defer reap(daemon)
	if err := waitHealthy(ctx, base, 30*time.Second); err != nil {
		return nil, err
	}
	id, err := submit(ctx, base, spec)
	if err != nil {
		return nil, err
	}
	report, err := awaitResult(ctx, base, id, timeout)
	if err != nil {
		return nil, err
	}
	return report, shutdown(daemon)
}

// freeAddr reserves a loopback port and releases it for the child to
// bind. The tiny reuse race is acceptable in a smoke test.
func freeAddr() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := l.Addr().String()
	return addr, l.Close()
}

func waitHealthy(ctx context.Context, base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if err := ctx.Err(); err != nil {
			return err
		}
		body, err := get(ctx, base+"/healthz")
		if err == nil && len(body) > 0 {
			return nil
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("daemon at %s not healthy after %v", base, timeout)
}

func submit(ctx context.Context, base string, spec map[string]any) (string, error) {
	payload, err := json.Marshal(spec)
	if err != nil {
		return "", err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/jobs", bytes.NewReader(payload))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", err
	}
	body, err := io.ReadAll(resp.Body)
	closeErr := resp.Body.Close()
	if err != nil {
		return "", err
	}
	if closeErr != nil {
		return "", closeErr
	}
	if resp.StatusCode != http.StatusAccepted {
		return "", fmt.Errorf("submit status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		return "", fmt.Errorf("submit response %q: %w", body, err)
	}
	return out.ID, nil
}

// awaitResult polls the job until it is terminal, requires "done", and
// returns the raw report JSON.
func awaitResult(ctx context.Context, base, id string, timeout time.Duration) ([]byte, error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		body, err := get(ctx, base+"/v1/jobs/"+id)
		if err != nil {
			return nil, err
		}
		var st struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &st); err != nil {
			return nil, fmt.Errorf("status response %q: %w", body, err)
		}
		switch st.State {
		case "done":
			return get(ctx, base+"/v1/jobs/"+id+"/result")
		case "failed", "canceled":
			return nil, fmt.Errorf("job %s ended %s: %s", id, st.State, st.Error)
		}
		time.Sleep(100 * time.Millisecond)
	}
	return nil, fmt.Errorf("job %s not terminal after %v", id, timeout)
}

// waitMetric polls /metrics until the named counter reaches min.
func waitMetric(ctx context.Context, base, name string, min float64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if err := ctx.Err(); err != nil {
			return err
		}
		if v, err := metricValue(ctx, base, name); err == nil && v >= min {
			return nil
		}
		time.Sleep(25 * time.Millisecond)
	}
	return fmt.Errorf("%s never reached %v within %v", name, min, timeout)
}

func metricValue(ctx context.Context, base, name string) (float64, error) {
	body, err := get(ctx, base+"/metrics")
	if err != nil {
		return 0, err
	}
	for _, line := range strings.Split(string(body), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			return strconv.ParseFloat(fields[1], 64)
		}
	}
	return 0, fmt.Errorf("metric %s not exposed", name)
}

func get(ctx context.Context, url string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	body, err := io.ReadAll(resp.Body)
	closeErr := resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if closeErr != nil {
		return nil, closeErr
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	return body, nil
}

// shutdown asks a daemon to drain via SIGTERM and waits for it.
func shutdown(daemon *exec.Cmd) error {
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("signal daemon: %w", err)
	}
	done := make(chan error, 1)
	go func() { done <- daemon.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("daemon exit: %w", err)
		}
		return nil
	case <-time.After(30 * time.Second):
		// Wedged daemon: hard-kill so the smoke run terminates; the
		// earlier assertions already decided pass/fail.
		_ = daemon.Process.Kill()
		return fmt.Errorf("daemon did not drain within 30s of SIGTERM")
	}
}

// reap hard-kills a child that is still running and collects it; exit
// errors here are expected (killed workers, already-reaped daemons).
func reap(cmd *exec.Cmd) {
	if cmd.Process == nil {
		return
	}
	// Kill on an exited process just returns an error; ignoring it
	// keeps reap idempotent across the deferred and explicit call sites.
	_ = cmd.Process.Kill()
	// Wait's exit error is expected here (killed worker, reaped daemon).
	_ = cmd.Wait()
}
