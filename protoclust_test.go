package protoclust_test

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"net"
	"testing"
	"time"

	"protoclust"
	"protoclust/internal/pcap"
)

func TestProtocolsList(t *testing.T) {
	ps := protoclust.Protocols()
	if len(ps) != 8 {
		t.Fatalf("Protocols = %v, want 8 entries (7 paper + modbus extension)", ps)
	}
}

func TestGenerateTraceUnknown(t *testing.T) {
	if _, err := protoclust.GenerateTrace("http3", 10, 1); err == nil {
		t.Error("unknown protocol should error")
	}
}

func TestAnalyzeEmptyTrace(t *testing.T) {
	if _, err := protoclust.Analyze(&protoclust.Trace{}, protoclust.DefaultOptions()); err == nil {
		t.Error("empty trace should error")
	}
	if _, err := protoclust.Analyze(nil, protoclust.DefaultOptions()); err == nil {
		t.Error("nil trace should error")
	}
}

func TestAnalyzeUnknownSegmenter(t *testing.T) {
	tr, err := protoclust.GenerateTrace("ntp", 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	o := protoclust.DefaultOptions()
	o.Segmenter = "wireshark"
	if _, err := protoclust.Analyze(tr, o); err == nil {
		t.Error("unknown segmenter should error")
	}
}

func TestAnalyzeZeroOptionsGetDefaults(t *testing.T) {
	tr, err := protoclust.GenerateTrace("ntp", 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := protoclust.Analyze(tr, protoclust.Options{})
	if err != nil {
		t.Fatalf("Analyze with zero options: %v", err)
	}
	if a.Epsilon() <= 0 {
		t.Errorf("epsilon = %v, want > 0", a.Epsilon())
	}
}

func TestAnalyzeTruthNTP(t *testing.T) {
	tr, err := protoclust.GenerateTrace("ntp", 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	o := protoclust.DefaultOptions()
	o.Segmenter = protoclust.SegmenterTruth
	a, err := protoclust.Analyze(tr, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.PseudoTypes()) == 0 {
		t.Fatal("no pseudo types found")
	}
	m := a.Evaluate()
	if m.Precision < 0.95 {
		t.Errorf("NTP truth-segment precision = %.2f, want ≥ 0.95 (Table I)", m.Precision)
	}
	if m.FScore < 0.9 {
		t.Errorf("NTP truth-segment F-score = %.2f, want ≥ 0.9 (Table I)", m.FScore)
	}
	if m.Coverage <= 0.5 {
		t.Errorf("coverage = %.2f, want > 0.5", m.Coverage)
	}
}

func TestAnalyzeHeuristicSegmenters(t *testing.T) {
	tr, err := protoclust.GenerateTrace("nbns", 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, seg := range []string{protoclust.SegmenterNEMESYS, protoclust.SegmenterNetzob, protoclust.SegmenterCSP} {
		t.Run(seg, func(t *testing.T) {
			o := protoclust.DefaultOptions()
			o.Segmenter = seg
			a, err := protoclust.Analyze(tr, o)
			if err != nil {
				t.Fatalf("Analyze: %v", err)
			}
			if a.UniqueSegments() == 0 {
				t.Error("no unique segments")
			}
			if cov := a.Coverage(); cov <= 0 || cov > 1 {
				t.Errorf("coverage = %v out of range", cov)
			}
		})
	}
}

func TestAnalyzeBudgetErrorSurfaces(t *testing.T) {
	// Netzob on the AU trace exceeds its alignment budget — the paper's
	// "fails" cell must surface as ErrBudgetExceeded.
	tr, err := protoclust.GenerateTrace("au", 123, 1)
	if err != nil {
		t.Fatal(err)
	}
	o := protoclust.DefaultOptions()
	o.Segmenter = protoclust.SegmenterNetzob
	_, err = protoclust.Analyze(tr, o)
	if !errors.Is(err, protoclust.ErrBudgetExceeded) {
		t.Errorf("err = %v, want ErrBudgetExceeded", err)
	}
}

func TestPseudoTypeSampleValues(t *testing.T) {
	tr, err := protoclust.GenerateTrace("ntp", 80, 2)
	if err != nil {
		t.Fatal(err)
	}
	o := protoclust.DefaultOptions()
	o.Segmenter = protoclust.SegmenterTruth
	a, err := protoclust.Analyze(tr, o)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range a.PseudoTypes() {
		s := pt.SampleValues(2)
		if len(s) > 2 {
			t.Errorf("SampleValues(2) returned %d values", len(s))
		}
		huge := pt.SampleValues(1 << 20)
		if len(huge) != len(pt.UniqueValues) {
			t.Errorf("SampleValues(huge) = %d, want all %d", len(huge), len(pt.UniqueValues))
		}
	}
}

func TestECDFCurveAccessor(t *testing.T) {
	tr, err := protoclust.GenerateTrace("ntp", 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	o := protoclust.DefaultOptions()
	o.Segmenter = protoclust.SegmenterTruth
	a, err := protoclust.Analyze(tr, o)
	if err != nil {
		t.Fatal(err)
	}
	x, y, sm, knee := a.ECDFCurve()
	if len(x) == 0 || len(x) != len(y) || len(y) != len(sm) {
		t.Fatalf("curve lengths: x=%d y=%d sm=%d", len(x), len(y), len(sm))
	}
	if knee >= len(x) {
		t.Errorf("knee index %d out of range", knee)
	}
}

func TestReadPCAP(t *testing.T) {
	var buf bytes.Buffer
	w := pcap.NewWriter(&buf, pcap.LinkTypeEthernet)
	payloads := [][]byte{{1, 2, 3, 4}, {5, 6, 7, 8}, {9, 10}}
	for i, p := range payloads {
		frame, err := pcap.BuildUDPFrame(net.IPv4(10, 0, 0, 1), net.IPv4(10, 0, 0, 2), 999, 123, p)
		if err != nil {
			t.Fatal(err)
		}
		pkt := &pcap.Packet{Timestamp: time.Unix(int64(i), 0), Data: frame}
		if err := w.WritePacket(pkt); err != nil {
			t.Fatal(err)
		}
	}
	tr, err := protoclust.ReadPCAP(&buf, nil)
	if err != nil {
		t.Fatalf("ReadPCAP: %v", err)
	}
	if len(tr.Messages) != 3 {
		t.Fatalf("read %d messages, want 3", len(tr.Messages))
	}
	if !bytes.Equal(tr.Messages[0].Data, payloads[0]) {
		t.Errorf("payload mismatch: %x", tr.Messages[0].Data)
	}
	if tr.Messages[0].SrcAddr != "10.0.0.1:999" {
		t.Errorf("SrcAddr = %q", tr.Messages[0].SrcAddr)
	}
}

func TestReadPCAPFilter(t *testing.T) {
	var buf bytes.Buffer
	w := pcap.NewWriter(&buf, pcap.LinkTypeEthernet)
	for i, port := range []uint16{53, 123, 53} {
		frame, err := pcap.BuildUDPFrame(net.IPv4(10, 0, 0, 1), net.IPv4(10, 0, 0, 2), 5000, port, []byte{byte(i), 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WritePacket(&pcap.Packet{Timestamp: time.Unix(int64(i), 0), Data: frame}); err != nil {
			t.Fatal(err)
		}
	}
	tr, err := protoclust.ReadPCAP(&buf, func(src, dst string, payload []byte) bool {
		return dst == "10.0.0.2:53"
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Messages) != 2 {
		t.Errorf("filtered to %d messages, want 2", len(tr.Messages))
	}
}

func TestReadPCAPBadStream(t *testing.T) {
	if _, err := protoclust.ReadPCAP(bytes.NewReader([]byte("not a pcap")), nil); err == nil {
		t.Error("garbage input should error")
	}
}

func TestRunFieldHunter(t *testing.T) {
	tr, err := protoclust.GenerateTrace("dns", 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := protoclust.RunFieldHunter(tr)
	if err != nil {
		t.Fatalf("RunFieldHunter: %v", err)
	}
	if len(res.Fields) == 0 {
		t.Error("FieldHunter found nothing on DNS")
	}
	if res.Coverage <= 0 || res.Coverage > 0.3 {
		t.Errorf("FieldHunter coverage = %v, want small positive", res.Coverage)
	}
}

func TestRunFieldHunterNoContext(t *testing.T) {
	tr, err := protoclust.GenerateTrace("awdl", 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := protoclust.RunFieldHunter(tr); err == nil {
		t.Error("AWDL (no IP context) should fail FieldHunter")
	}
}

// TestCoverageExceedsFieldHunter is the repository's headline invariant:
// clustering coverage beats the rule-based baseline by a large factor
// (Section IV-D).
func TestCoverageExceedsFieldHunter(t *testing.T) {
	tr, err := protoclust.GenerateTrace("dns", 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	fh, err := protoclust.RunFieldHunter(tr)
	if err != nil {
		t.Fatal(err)
	}
	a, err := protoclust.Analyze(tr, protoclust.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a.Coverage() < 5*fh.Coverage {
		t.Errorf("clustering coverage %.2f not ≫ FieldHunter %.2f", a.Coverage(), fh.Coverage)
	}
}

func TestDeduceSemantics(t *testing.T) {
	tr, err := protoclust.GenerateTrace("ntp", 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	o := protoclust.DefaultOptions()
	o.Segmenter = protoclust.SegmenterTruth
	a, err := protoclust.Analyze(tr, o)
	if err != nil {
		t.Fatal(err)
	}
	ds := a.DeduceSemantics()
	if len(ds) != len(a.PseudoTypes()) {
		t.Fatalf("deductions = %d, want one per cluster (%d)", len(ds), len(a.PseudoTypes()))
	}
	named := 0
	for _, d := range ds {
		if d.Label == "" {
			t.Error("empty label")
		}
		if d.Label != "unknown" {
			named++
		}
	}
	if named == 0 {
		t.Error("no cluster received a semantic label on NTP")
	}
}

func TestTrainValueModel(t *testing.T) {
	tr, err := protoclust.GenerateTrace("dns", 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	o := protoclust.DefaultOptions()
	o.Segmenter = protoclust.SegmenterTruth
	a, err := protoclust.Analyze(tr, o)
	if err != nil {
		t.Fatal(err)
	}
	pts := a.PseudoTypes()
	if len(pts) == 0 {
		t.Fatal("no pseudo types")
	}
	m, err := pts[0].TrainValueModel()
	if err != nil {
		t.Fatalf("TrainValueModel: %v", err)
	}
	// Every training value must be scored as seen and finite.
	if !m.Seen(pts[0].UniqueValues[0]) {
		t.Error("training value not recognized by the model")
	}
	rng := rand.New(rand.NewSource(4))
	if v := m.Generate(rng); len(v) == 0 {
		t.Error("generated empty value")
	}
}

func TestSegmentsAccessor(t *testing.T) {
	tr, err := protoclust.GenerateTrace("ntp", 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	o := protoclust.DefaultOptions()
	o.Segmenter = protoclust.SegmenterTruth
	a, err := protoclust.Analyze(tr, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Segments()) == 0 {
		t.Error("Segments() empty")
	}
}

func TestClusterMessageTypes(t *testing.T) {
	tr, err := protoclust.GenerateTrace("dns", 80, 1)
	if err != nil {
		t.Fatal(err)
	}
	o := protoclust.DefaultOptions()
	o.Segmenter = protoclust.SegmenterTruth
	mt, err := protoclust.ClusterMessageTypes(tr, o)
	if err != nil {
		t.Fatalf("ClusterMessageTypes: %v", err)
	}
	if len(mt.Types) < 2 {
		t.Errorf("DNS message types = %d, want ≥ 2 (query/response)", len(mt.Types))
	}
	if mt.Epsilon <= 0 {
		t.Errorf("epsilon = %v", mt.Epsilon)
	}
	// Per-type sub-analysis must be possible.
	for _, group := range mt.Types {
		if len(group) < 10 {
			continue
		}
		sub := &protoclust.Trace{Protocol: tr.Protocol, Messages: group}
		if _, err := protoclust.Analyze(sub, o); err != nil {
			t.Errorf("per-type analysis failed: %v", err)
		}
	}
}

func TestClusterMessageTypesEmpty(t *testing.T) {
	if _, err := protoclust.ClusterMessageTypes(&protoclust.Trace{}, protoclust.DefaultOptions()); err == nil {
		t.Error("empty trace should error")
	}
}

func TestAnalysisReport(t *testing.T) {
	tr, err := protoclust.GenerateTrace("ntp", 80, 1)
	if err != nil {
		t.Fatal(err)
	}
	o := protoclust.DefaultOptions()
	o.Segmenter = protoclust.SegmenterTruth
	a, err := protoclust.Analyze(tr, o)
	if err != nil {
		t.Fatal(err)
	}
	r := a.Report(2)
	if r.Messages == 0 || r.TotalBytes == 0 || r.UniqueSegments == 0 {
		t.Errorf("report not populated: %+v", r)
	}
	if len(r.PseudoTypes) != len(a.PseudoTypes()) {
		t.Errorf("report clusters = %d, want %d", len(r.PseudoTypes), len(a.PseudoTypes()))
	}
	for _, c := range r.PseudoTypes {
		if len(c.SampleValues) > 2 {
			t.Errorf("cluster %d carries %d samples, want ≤ 2", c.ID, len(c.SampleValues))
		}
		if c.MinLength > c.MaxLength {
			t.Errorf("cluster %d length range inverted: %d..%d", c.ID, c.MinLength, c.MaxLength)
		}
	}
	if len(r.Semantics) != len(r.PseudoTypes) {
		t.Errorf("semantics = %d, want %d", len(r.Semantics), len(r.PseudoTypes))
	}
}

func TestAnalyzeContextCanceled(t *testing.T) {
	tr, err := protoclust.GenerateTrace("ntp", 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := protoclust.AnalyzeContext(ctx, tr, protoclust.DefaultOptions()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestAnalyzeContextDeadline(t *testing.T) {
	tr, err := protoclust.GenerateTrace("smb", 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	if _, err := protoclust.AnalyzeContext(ctx, tr, protoclust.DefaultOptions()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestAnalyzeRecordsStageTimings(t *testing.T) {
	tr, err := protoclust.GenerateTrace("ntp", 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	opts := protoclust.DefaultOptions()
	opts.Segmenter = protoclust.SegmenterTruth
	a, err := protoclust.Analyze(tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	stages := a.Timings()
	want := []string{"deduplicate", "segment", "cluster"}
	if len(stages) != len(want) {
		t.Fatalf("got %d stages, want %d", len(stages), len(want))
	}
	for i, s := range stages {
		if s.Stage != want[i] {
			t.Errorf("stage %d = %q, want %q", i, s.Stage, want[i])
		}
		if s.Duration < 0 {
			t.Errorf("stage %q has negative duration", s.Stage)
		}
	}
}
