package protoclust_test

import (
	"context"
	"errors"
	"fmt"
	"time"

	"protoclust"
)

// ExampleAnalyze shows the minimal end-to-end analysis: generate a
// trace, cluster its field data types, and inspect the result.
func ExampleAnalyze() {
	tr, err := protoclust.GenerateTrace("ntp", 200, 1)
	if err != nil {
		fmt.Println("generate:", err)
		return
	}
	opts := protoclust.DefaultOptions()
	opts.Segmenter = protoclust.SegmenterTruth
	analysis, err := protoclust.Analyze(tr, opts)
	if err != nil {
		fmt.Println("analyze:", err)
		return
	}
	fmt.Println("clusters found:", len(analysis.PseudoTypes()) > 0)
	fmt.Printf("coverage above half: %v\n", analysis.Coverage() > 0.5)
	m := analysis.Evaluate()
	fmt.Printf("precision at least 0.95: %v\n", m.Precision >= 0.95)
	// Output:
	// clusters found: true
	// coverage above half: true
	// precision at least 0.95: true
}

// ExampleAnalyzeContext bounds an analysis with a timeout: the context
// is threaded through the segmenter, the O(n²) dissimilarity matrix
// build, and refinement, so an expired deadline aborts the run promptly
// with context.DeadlineExceeded instead of finishing the matrix.
func ExampleAnalyzeContext() {
	tr, err := protoclust.GenerateTrace("ntp", 200, 1)
	if err != nil {
		fmt.Println("generate:", err)
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	opts := protoclust.DefaultOptions()
	opts.Segmenter = protoclust.SegmenterTruth
	analysis, err := protoclust.AnalyzeContext(ctx, tr, opts)
	if errors.Is(err, context.DeadlineExceeded) {
		fmt.Println("analysis exceeded the deadline")
		return
	}
	if err != nil {
		fmt.Println("analyze:", err)
		return
	}
	fmt.Println("clusters found:", len(analysis.PseudoTypes()) > 0)
	fmt.Println("stages timed:", len(analysis.Timings()))
	// Output:
	// clusters found: true
	// stages timed: 3
}

// ExampleGenerateTrace lists the built-in protocol generators.
func ExampleGenerateTrace() {
	for _, p := range protoclust.Protocols() {
		tr, err := protoclust.GenerateTrace(p, 3, 1)
		if err != nil {
			fmt.Println(p, "error")
			continue
		}
		fmt.Println(p, len(tr.Messages))
	}
	// Output:
	// au 3
	// awdl 3
	// dhcp 3
	// dns 3
	// modbus 3
	// nbns 3
	// ntp 3
	// smb 3
}

// ExampleRunFieldHunter demonstrates the baseline's context dependency:
// it works on IP traffic but cannot analyze link-layer protocols.
func ExampleRunFieldHunter() {
	dns, _ := protoclust.GenerateTrace("dns", 200, 1)
	if res, err := protoclust.RunFieldHunter(dns); err == nil {
		fmt.Println("dns fields found:", len(res.Fields) > 0)
	}
	awdl, _ := protoclust.GenerateTrace("awdl", 50, 1)
	if _, err := protoclust.RunFieldHunter(awdl); err != nil {
		fmt.Println("awdl: inference impossible without IP context")
	}
	// Output:
	// dns fields found: true
	// awdl: inference impossible without IP context
}

// ExamplePseudoType_TrainValueModel trains a value generator for one
// pseudo data type and checks a training value is recognized.
func ExamplePseudoType_TrainValueModel() {
	tr, _ := protoclust.GenerateTrace("ntp", 150, 1)
	opts := protoclust.DefaultOptions()
	opts.Segmenter = protoclust.SegmenterTruth
	analysis, err := protoclust.Analyze(tr, opts)
	if err != nil {
		fmt.Println("analyze:", err)
		return
	}
	pt := analysis.PseudoTypes()[0]
	model, err := pt.TrainValueModel()
	if err != nil {
		fmt.Println("train:", err)
		return
	}
	fmt.Println("training value recognized:", model.Seen(pt.UniqueValues[0]))
	// Output:
	// training value recognized: true
}
