package protoclust

import (
	"encoding/json"
	"fmt"
	"io"

	"protoclust/internal/netmsg"
)

// truthMessageJSON mirrors the sidecar format cmd/tracegen writes next
// to generated pcaps.
type truthMessageJSON struct {
	Index  int    `json:"index"`
	Src    string `json:"src"`
	Dst    string `json:"dst"`
	Fields []struct {
		Name   string `json:"name"`
		Offset int    `json:"offset"`
		Length int    `json:"length"`
		Type   string `json:"type"`
	} `json:"fields"`
}

// AttachTruth reads a ground-truth sidecar (the `<trace>.pcap.truth.json`
// format written by cmd/tracegen) and attaches the dissections to the
// trace's messages, enabling Evaluate on traces loaded from pcap files.
// The sidecar must describe exactly the trace's messages in order; each
// dissection must tile its message.
func AttachTruth(tr *Trace, r io.Reader) error {
	var truth []truthMessageJSON
	if err := json.NewDecoder(r).Decode(&truth); err != nil {
		return fmt.Errorf("protoclust: parse truth json: %w", err)
	}
	if len(truth) != len(tr.Messages) {
		return fmt.Errorf("protoclust: truth describes %d messages, trace has %d",
			len(truth), len(tr.Messages))
	}
	for i, tm := range truth {
		m := tr.Messages[i]
		fields := make([]netmsg.Field, 0, len(tm.Fields))
		for _, f := range tm.Fields {
			fields = append(fields, netmsg.Field{
				Name:   f.Name,
				Offset: f.Offset,
				Length: f.Length,
				Type:   netmsg.FieldType(f.Type),
			})
		}
		m.Fields = fields
		if err := m.ValidateFields(); err != nil {
			m.Fields = nil
			return fmt.Errorf("protoclust: truth message %d: %w", i, err)
		}
		// Restore endpoint metadata lost by IP re-encapsulation (AWDL
		// MAC addresses, AU device names).
		if tm.Src != "" {
			m.SrcAddr = tm.Src
		}
		if tm.Dst != "" {
			m.DstAddr = tm.Dst
		}
	}
	return nil
}
