module protoclust

go 1.22
